package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// This file is the continuous scheduler (Config.Scheduler =
// SchedContinuous): the replacement for the worker-pool/micro-batch
// loop. One goroutine owns the batch membership; each iteration it
//
//  1. admits queued requests and resumes parked decodes into free
//     batch slots (up to MaxBatch), alternating between the two
//     sources so neither starves,
//  2. runs one verification sweep — every running decode advances
//     exactly one core.DecodeState.Step, parallelized across up to
//     Workers goroutines (on real hardware this is the single batched
//     tree-verification forward pass over all in-flight requests),
//  3. retires finished decodes (their slots free immediately — no
//     micro-batch to drain), and
//  4. preempts decodes that have held a slot for PreemptQuantum
//     sweeps while other work is waiting: the decode parks with its
//     session pages pinned (core.DecodeState.Park) and re-enters
//     round-robin.
//
// Requests therefore join and leave the running batch at every
// verification step, and a long decode can never serialize short
// requests behind it for more than a quantum. Preemption checkpoints
// fall only between sweeps, which the step-wise decode loop makes
// output-invariant, so scheduling — like worker scheduling before it —
// never changes bytes.

// schedTask is one decode's residency in the continuous scheduler.
type schedTask struct {
	t     *task
	label string
	// st is the resumable decode, created lazily on the task's first
	// sweep so session preparation parallelizes across the sweep
	// goroutines instead of serializing in the admission loop.
	st *core.DecodeState
	// beginErr is a terminal pre-decode outcome: the task's context
	// was already dead, or its options named an unknown strategy.
	beginErr error
	// faultErr is a mid-decode abort injected by Config.StepFault (the
	// chaos plane): the decode has live state that must be dropped, not
	// finished.
	faultErr error
	// done latches Step reporting completion (set from sweep workers,
	// read by the scheduler after the sweep barrier).
	done bool
	// wall accumulates this decode's own step time — busy time, kept
	// comparable to the worker pool's per-decode wall even though the
	// decode now shares the engine with the whole batch.
	wall time.Duration
	// residency counts sweeps since admission or last resume — the
	// preemption clock.
	residency int
	// park is the open preemption span while the decode sits parked
	// (nil untraced or running); parks counts preemptions for the
	// decode span's attrs.
	park  *trace.Span
	parks int
}

// scheduler is the continuous dispatch loop. It exits once quit is
// closed and every queued, running and parked decode has been retired
// (Close drains, same contract as the micro-batch path).
func (e *Engine) scheduler() {
	defer e.wg.Done()
	dec := core.NewDecoder(e.m).WithSessionCache(e.genCache)
	var running, parked, retired []*schedTask
	quitting := false
	fromParked := false

	admit := func(t *task) {
		wait := time.Since(t.enqueued)
		t.wait = wait
		t.pickedUp()
		e.st.queueWait(wait)
		if e.ctrl != nil {
			e.ctrl.ObserveQueueWait(wait.Seconds() * 1000)
		}
		running = append(running, &schedTask{t: t, label: t.req.Options.StrategyLabel()})
	}
	resume := func() {
		x := parked[0]
		parked = parked[1:]
		x.residency = 0
		x.st.Resume()
		x.park.End()
		x.park = nil
		e.st.resume()
		running = append(running, x)
	}
	// admitOne fills one free slot, alternating between the queue and
	// the parked set when both have work so sustained arrivals cannot
	// starve parked decodes (or vice versa). Reports whether a slot
	// was filled.
	admitOne := func() bool {
		tryQueue := func() bool {
			select {
			case t := <-e.queue:
				admit(t)
				return true
			default:
				return false
			}
		}
		if fromParked && len(parked) > 0 {
			fromParked = false
			resume()
			return true
		}
		if tryQueue() {
			fromParked = len(parked) > 0
			return true
		}
		if len(parked) > 0 {
			resume()
			return true
		}
		return false
	}

	for {
		if !quitting {
			select {
			case <-e.quit:
				quitting = true
			default:
			}
		}
		for len(running) < e.cfg.MaxBatch && admitOne() {
		}
		if len(running) == 0 {
			// Nothing runnable (parked is empty too, or admitOne would
			// have resumed): block for work, or finish the drain.
			e.st.schedGauges(0, len(parked))
			if quitting {
				select {
				case t := <-e.queue:
					admit(t)
					continue
				default:
					return
				}
			}
			select {
			case t := <-e.queue:
				admit(t)
			case <-e.quit:
				quitting = true
			}
			continue
		}
		e.st.schedGauges(len(running), len(parked))
		e.observeSweep(len(running), len(parked))

		e.sweep(dec, running)

		// Retire finished decodes; preempt over-quantum residents when
		// other work is waiting for a slot.
		waiters := len(e.queue) > 0 || len(parked) > 0
		keep := running[:0]
		retired = retired[:0]
		for _, x := range running {
			switch {
			case x.done:
				retired = append(retired, x)
			case waiters && e.cfg.PreemptQuantum > 0 && x.residency >= e.cfg.PreemptQuantum:
				x.st.Park()
				x.parks++
				if tr := trace.FromContext(x.t.ctx); tr != nil {
					x.park = tr.Start(x.st.TraceSpan(), trace.KindPark, "")
					x.park.SetAttrInt("residency", int64(x.residency))
				}
				e.st.preempt()
				parked = append(parked, x)
			default:
				keep = append(keep, x)
			}
		}
		for i := len(keep); i < len(running); i++ {
			running[i] = nil
		}
		running = keep
		// Publish the post-sweep gauges BEFORE delivering retired
		// responses: a client acting on its response (scraping metrics,
		// submitting a follow-up) must never observe its own finished
		// decode still occupying a batch slot.
		e.st.schedGauges(len(running), len(parked))
		for i, x := range retired {
			e.retire(x)
			retired[i] = nil
		}

		// The sweep boundary is the scheduler's only guaranteed
		// scheduling point: with Workers <= 1 the sweep runs inline as
		// pure computation, and on GOMAXPROCS=1 a client whose response
		// was just delivered would otherwise wait for the runtime's
		// asynchronous preemption (tens of milliseconds) before it could
		// observe it. Yield once per sweep so retired requests return to
		// their callers with sweep-granularity latency, not preemption-
		// granularity.
		runtime.Gosched()
	}
}

// sweep advances every running decode one verification step,
// fanned out over up to Workers goroutines. The barrier at the end is
// the step boundary: admission, retirement and preemption all happen
// against a quiesced batch.
func (e *Engine) sweep(dec *core.Decoder, running []*schedTask) {
	e.st.sweep(len(running))
	if len(running) == 1 || e.cfg.Workers <= 1 {
		for _, x := range running {
			x.done = e.stepOne(dec, x)
		}
		return
	}
	workers := e.cfg.Workers
	if workers > len(running) {
		workers = len(running)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(running) {
					return
				}
				x := running[i]
				x.done = e.stepOne(dec, x)
			}
		}()
	}
	wg.Wait()
}

// stepOne advances one decode by one step, lazily beginning it on its
// first sweep. Reports whether the decode is finished.
func (e *Engine) stepOne(dec *core.Decoder, x *schedTask) bool {
	start := time.Now()
	defer func() { x.wall += time.Since(start) }()
	if x.st == nil {
		if err := x.t.ctx.Err(); err != nil {
			// Dead before its first step (cancelled while queued): no
			// decode state to build, retire carries the context error.
			x.beginErr = err
			return true
		}
		st, err := dec.BeginDecode(x.t.ctx, x.t.promptIDs, x.t.req.Options, x.t.req.OnStep)
		if err != nil {
			x.beginErr = err
			return true
		}
		x.st = st
	}
	if e.cfg.StepFault != nil {
		// Fault-injection plane: consulted every sweep so a fault
		// (crash, wedge, slowdown) lands mid-decode, where real replica
		// failures land. A wedging hook blocks the sweep worker here,
		// exactly like a hung forward pass would.
		if err := e.cfg.StepFault(x.t.ctx); err != nil {
			x.faultErr = err
			return true
		}
	}
	x.residency++
	return x.st.Step()
}

// retire finalizes a finished decode and delivers its Response — the
// continuous scheduler's counterpart of serveTask, with identical
// accounting and single-flight resolution.
func (e *Engine) retire(x *schedTask) {
	if x.st == nil {
		// Never began: cancelled while queued, or an unknown strategy.
		if errors.Is(x.beginErr, context.Canceled) || errors.Is(x.beginErr, context.DeadlineExceeded) {
			e.st.cancel()
			e.finish(x.t, &Response{Err: x.beginErr, Strategy: x.label, QueueWait: x.t.wait})
			return
		}
		e.st.fail()
		e.finish(x.t, &Response{Result: &core.Result{}, Err: x.beginErr, Wall: x.wall, Strategy: x.label, QueueWait: x.t.wait})
		return
	}
	if sp := x.st.TraceSpan(); sp != nil && x.parks > 0 {
		sp.SetAttrInt("parks", int64(x.parks))
	}
	if x.faultErr != nil {
		// Injected fault mid-decode: the state is abandoned, not
		// finished — Drop releases its pinned session pages.
		x.st.Drop()
		if sp := x.st.TraceSpan(); sp != nil {
			sp.SetAttr("error", x.faultErr.Error())
			sp.End()
		}
		if errors.Is(x.faultErr, context.Canceled) || errors.Is(x.faultErr, context.DeadlineExceeded) {
			e.st.cancel()
		} else {
			e.st.fail()
		}
		e.finish(x.t, &Response{Result: &core.Result{}, Err: x.faultErr, Wall: x.wall, Strategy: x.label, QueueWait: x.t.wait})
		return
	}
	res, err := x.st.Finish()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.st.cancel()
		} else {
			e.st.fail()
		}
		e.finish(x.t, &Response{Result: res, Err: err, Wall: x.wall, Strategy: x.label, QueueWait: x.t.wait})
		return
	}
	if e.cache != nil && x.t.req.OnStep == nil {
		e.cache.add(x.t.key, res)
	}
	e.st.complete(x.label, res, x.wall)
	e.observeResult(x.t.req, x.label, res)
	e.finish(x.t, &Response{Result: res, Wall: x.wall, Strategy: x.label, QueueWait: x.t.wait})
}

// observeSweep is the scheduler's per-sweep consultation of the
// speculation controller: batch occupancy (running over batch slots)
// and queue pressure (queued + parked over queue capacity) drive the
// load-degradation ladder.
func (e *Engine) observeSweep(running, parked int) {
	if e.ctrl == nil {
		return
	}
	occ := float64(running) / float64(e.cfg.MaxBatch)
	q := float64(len(e.queue)+parked) / float64(cap(e.queue))
	e.ctrl.ObserveSweep(occ, q)
}
