package serve

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/core/spec"
)

// TestTreeBudgetCanonicalKeys pins the cache-key canonicalization of
// the node budget: a request spelling the decoder default explicitly
// and one leaving the budget unset decode identically, so they must
// share one LRU entry — and linear strategies, which ignore the field,
// must not fragment the cache over stray budget values.
func TestTreeBudgetCanonicalKeys(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: 64})
	defer eng.Close()
	ctx := context.Background()

	first, err := eng.Generate(ctx, Request{Prompt: prompts[0],
		Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 24}})
	if err != nil || first.Err != nil {
		t.Fatalf("decode failed: %v / %v", err, first.Err)
	}
	explicit, err := eng.Generate(ctx, Request{Prompt: prompts[0],
		Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 24, TreeBudget: spec.DefaultTreeBudget}})
	if err != nil || explicit.Err != nil {
		t.Fatalf("decode failed: %v / %v", err, explicit.Err)
	}
	if !explicit.Cached {
		t.Fatal("explicit default budget missed the cache entry of the unset-budget request")
	}

	lin, err := eng.Generate(ctx, Request{Prompt: prompts[0],
		Options: core.Options{Strategy: "ours", MaxNewTokens: 24}})
	if err != nil || lin.Err != nil {
		t.Fatalf("decode failed: %v / %v", err, lin.Err)
	}
	stray, err := eng.Generate(ctx, Request{Prompt: prompts[0],
		Options: core.Options{Strategy: "ours", MaxNewTokens: 24, TreeBudget: 7}})
	if err != nil || stray.Err != nil {
		t.Fatalf("decode failed: %v / %v", err, stray.Err)
	}
	if !stray.Cached {
		t.Fatal("linear strategy fragmented the cache over an ignored tree budget")
	}
}

// TestAcceptDepthHistogramMetrics pins the new observability surface
// of tree drafting: the acceptance-depth histogram partitions exactly
// the decoding steps, the node-budget accounting flows from decode
// results into the snapshot (globally and per strategy), and linear
// strategies report no tree work.
func TestAcceptDepthHistogramMetrics(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: -1})
	defer eng.Close()

	var reqs []Request
	for i, p := range prompts[:6] {
		reqs = append(reqs,
			Request{Prompt: p, Options: core.Options{Strategy: "ours", MaxNewTokens: 32, Seed: int64(i)}},
			Request{Prompt: p, Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 32, Seed: int64(i)}},
		)
	}
	for i, resp := range eng.GenerateBatch(context.Background(), reqs) {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
	}

	mt := eng.Metrics()
	if len(mt.AcceptDepthHist) != AcceptDepthBuckets {
		t.Fatalf("histogram has %d buckets, want %d", len(mt.AcceptDepthHist), AcceptDepthBuckets)
	}
	var histSum uint64
	for _, v := range mt.AcceptDepthHist {
		histSum += v
	}
	if histSum != mt.Steps {
		t.Fatalf("histogram mass %d, want one entry per step (%d)", histSum, mt.Steps)
	}
	if mt.AcceptDepthHist[0] == histSum {
		t.Fatal("every step emitted one token — speculative fixture decoded nothing speculatively")
	}
	if mt.TreeNodes == 0 || mt.TreeBudget == 0 {
		t.Fatalf("tree accounting empty: nodes=%d budget=%d", mt.TreeNodes, mt.TreeBudget)
	}
	if u := mt.TreeBudgetUtilization; u <= 0 || u > 1 {
		t.Fatalf("utilization %f outside (0, 1]", u)
	}

	ours, tree := mt.PerStrategy["Ours"], mt.PerStrategy["OursTree"]
	if tree.TreeNodes == 0 || tree.TreeBudget == 0 || tree.TreeBudgetUtilization <= 0 {
		t.Fatalf("OursTree strategy tree accounting empty: %+v", tree)
	}
	if ours.TreeNodes != 0 || ours.TreeBudget != 0 || ours.TreeBudgetUtilization != 0 {
		t.Fatalf("linear Ours reported tree work: %+v", ours)
	}
	if tree.TreeNodes != mt.TreeNodes || tree.TreeBudget != mt.TreeBudget {
		t.Fatalf("per-strategy tree totals (%d/%d) disagree with globals (%d/%d)",
			tree.TreeNodes, tree.TreeBudget, mt.TreeNodes, mt.TreeBudget)
	}
}

// TestGrammarMetricsFlow pins the grammar observability surface: the
// oracle's pruned-node and construct-token counters flow from decode
// results into the snapshot (globally and per strategy) and into the
// Prometheus exposition, while non-grammar strategies report zeros.
func TestGrammarMetricsFlow(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: -1})
	defer eng.Close()

	var reqs []Request
	for i, p := range prompts[:4] {
		reqs = append(reqs,
			Request{Prompt: p, Options: core.Options{Strategy: "grammar-tree", MaxNewTokens: 32, Seed: int64(i)}},
			Request{Prompt: p, Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 32, Seed: int64(i)}},
		)
	}
	for i, resp := range eng.GenerateBatch(context.Background(), reqs) {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
	}

	mt := eng.Metrics()
	g, ours := mt.PerStrategy["GrammarTree"], mt.PerStrategy["OursTree"]
	if g.Completed == 0 {
		t.Fatal("no grammar-tree decodes recorded")
	}
	if ours.GrammarPrunedNodes != 0 || ours.GrammarDraftTokens != 0 {
		t.Fatalf("ours-tree reported grammar work: %+v", ours)
	}
	if g.GrammarPrunedNodes != mt.GrammarPrunedNodes || g.GrammarDraftTokens != mt.GrammarDraftTokens {
		t.Fatalf("per-strategy grammar totals (%d/%d) disagree with globals (%d/%d)",
			g.GrammarPrunedNodes, g.GrammarDraftTokens, mt.GrammarPrunedNodes, mt.GrammarDraftTokens)
	}

	var sb strings.Builder
	eng.WritePrometheusTo(&sb, 1)
	body := sb.String()
	for _, want := range []string{
		"vgend_grammar_pruned_nodes_total ",
		"vgend_grammar_draft_tokens_total ",
		`vgend_strategy_grammar_pruned_nodes_total{strategy="GrammarTree"} `,
		`vgend_strategy_grammar_draft_tokens_total{strategy="GrammarTree"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTreeMetricsPrometheusExposition pins the text exposition of the
// new families: the depth histogram with its open-ended last bucket,
// the node counters and the per-strategy utilization gauge.
func TestTreeMetricsPrometheusExposition(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: -1})
	defer eng.Close()
	resp, err := eng.Generate(context.Background(), Request{
		Prompt:  prompts[0],
		Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 24},
	})
	if err != nil || resp.Err != nil {
		t.Fatalf("decode failed: %v / %v", err, resp.Err)
	}

	var sb strings.Builder
	eng.WritePrometheusTo(&sb, 1)
	body := sb.String()
	for _, want := range []string{
		`vgend_accept_depth_total{depth="1"} `,
		`vgend_accept_depth_total{depth="16+"} `,
		"# TYPE vgend_accept_depth_total counter",
		"vgend_tree_nodes_total ",
		"vgend_tree_budget_total ",
		"vgend_tree_budget_utilization ",
		`vgend_strategy_tree_nodes_total{strategy="OursTree"} `,
		`vgend_strategy_tree_budget_utilization{strategy="OursTree"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEngineDefaultTreeBudget pins the daemon-wide budget default: a
// request leaving TreeBudget unset decodes under Config.
// DefaultTreeBudget, an explicit budget survives untouched.
func TestEngineDefaultTreeBudget(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: -1, DefaultTreeBudget: 5})
	defer eng.Close()

	resp, err := eng.Generate(context.Background(), Request{
		Prompt:  prompts[0],
		Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 24},
	})
	if err != nil || resp.Err != nil {
		t.Fatalf("decode failed: %v / %v", err, resp.Err)
	}
	if want := resp.Result.Steps * 5; resp.Result.TreeBudget != want {
		t.Fatalf("tree budget %d over %d steps, want %d (engine default 5)",
			resp.Result.TreeBudget, resp.Result.Steps, want)
	}

	explicit, err := eng.Generate(context.Background(), Request{
		Prompt:  prompts[0],
		Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 24, TreeBudget: 9},
	})
	if err != nil || explicit.Err != nil {
		t.Fatalf("decode failed: %v / %v", err, explicit.Err)
	}
	if want := explicit.Result.Steps * 9; explicit.Result.TreeBudget != want {
		t.Fatalf("explicit tree budget %d over %d steps, want %d",
			explicit.Result.TreeBudget, explicit.Result.Steps, want)
	}
}
