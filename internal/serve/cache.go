package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// cacheKey identifies one generation. Decoding is fully deterministic
// given (model, prompt, options) — see core.Options.Seed — and an
// Engine is bound to exactly one model, so the prompt plus the full
// options struct (which embeds the seed) is a complete key. The prompt
// component is the canonical packed token-id key (Engine.requestKey via
// model.PromptKeyString), not the raw request string: spellings that
// tokenize identically decode identically and share one entry.
type cacheKey struct {
	prompt string
	opts   core.Options
}

// lruCache is a mutex-guarded LRU over completed generations. Cached
// *core.Result values are shared across callers and must be treated as
// immutable.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *core.Result
}

func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: map[cacheKey]*list.Element{}}
}

// get returns the cached result for key, refreshing its recency.
func (c *lruCache) get(key cacheKey) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add inserts (or refreshes) a completed generation, evicting the
// least-recently-used entry when over capacity.
func (c *lruCache) add(key cacheKey, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached generations.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
