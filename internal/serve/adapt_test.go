package serve

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestParseSchedulerModeTable: satellite coverage for the mode parser —
// documented spellings parse, empty selects the documented default, and
// case variants or unknown names return errors instead of silently
// picking a scheduler.
func TestParseSchedulerModeTable(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"", SchedContinuous, false},
		{"continuous", SchedContinuous, false},
		{"microbatch", SchedMicroBatch, false},
		{"micro-batch", SchedMicroBatch, false},
		{"workers", SchedMicroBatch, false},
		{"Continuous", "", true},
		{"CONTINUOUS", "", true},
		{"MicroBatch", "", true},
		{" continuous", "", true},
		{"continuous ", "", true},
		{"batch", "", true},
		{"sequential", "", true},
	}
	for _, tc := range cases {
		got, err := ParseSchedulerMode(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSchedulerMode(%q) = %q, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSchedulerMode(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSchedulerMode(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestParseAdaptModeTable: same contract for the adaptive-speculation
// mode parser.
func TestParseAdaptModeTable(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"", AdaptOff, false},
		{"off", AdaptOff, false},
		{"on", AdaptOn, false},
		{"shadow", AdaptShadow, false},
		{"On", "", true},
		{"OFF", "", true},
		{"Shadow", "", true},
		{" on", "", true},
		{"on ", "", true},
		{"auto", "", true},
		{"enabled", "", true},
	}
	for _, tc := range cases {
		got, err := ParseAdaptMode(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseAdaptMode(%q) = %q, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAdaptMode(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseAdaptMode(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNewEnginePanicsOnUnknownAdaptMode(t *testing.T) {
	m, _ := fixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine accepted an unknown adapt mode")
		}
	}()
	NewEngine(m, Config{Workers: 1, Adapt: "bogus"})
}

// TestAdaptShadowByteIdenticalToOff: shadow mode must record decisions
// while changing nothing — every response byte-identical to a
// controller-off engine's, for explicit and default-strategy requests
// alike.
func TestAdaptShadowByteIdenticalToOff(t *testing.T) {
	m, prompts := fixture(t)
	off := NewEngine(m, Config{Workers: 2, CacheSize: -1, NoDedup: true})
	defer off.Close()
	shadow := NewEngine(m, Config{Workers: 2, CacheSize: -1, NoDedup: true, Adapt: AdaptShadow})
	defer shadow.Close()

	reqs := make([]Request, 0, 12)
	for i, p := range prompts[:6] {
		reqs = append(reqs,
			Request{Prompt: p, Options: core.Options{MaxNewTokens: 32, Seed: int64(i)}, NoExplicitStrategy: true},
			Request{Prompt: p, Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 32, Seed: int64(i), Temperature: 0.7}})
	}
	ctx := context.Background()
	for i, req := range reqs {
		a, errA := off.Generate(ctx, req)
		b, errB := shadow.Generate(ctx, req)
		if errA != nil || errB != nil {
			t.Fatalf("request %d: off err=%v shadow err=%v", i, errA, errB)
		}
		if a.Result.Text != b.Result.Text || a.Result.Steps != b.Result.Steps || a.Strategy != b.Strategy {
			t.Fatalf("request %d: shadow diverged from off\noff:    %q (%s, %d steps)\nshadow: %q (%s, %d steps)",
				i, a.Result.Text, a.Strategy, a.Result.Steps, b.Result.Text, b.Strategy, b.Result.Steps)
		}
	}
	ms := shadow.Metrics()
	if ms.Adapt != AdaptShadow {
		t.Fatalf("Adapt = %q, want shadow", ms.Adapt)
	}
	if ms.AdaptDecisions != uint64(len(reqs)) {
		t.Fatalf("AdaptDecisions = %d, want %d (one per submission)", ms.AdaptDecisions, len(reqs))
	}
	if ms.AdaptShadowed != ms.AdaptDecisions {
		t.Fatalf("AdaptShadowed = %d, want %d (shadow applies nothing)", ms.AdaptShadowed, ms.AdaptDecisions)
	}
}

// TestAdaptOnReroutesOnlyDefaultRequests: with the controller applied,
// a request that named no strategy decodes under the controller's pick
// (tree drafting at low load), while explicit choices pass through
// untouched.
func TestAdaptOnReroutesOnlyDefaultRequests(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: -1, NoDedup: true, Adapt: AdaptOn})
	defer eng.Close()
	ctx := context.Background()

	def, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: core.Options{MaxNewTokens: 32, Seed: 1}, NoExplicitStrategy: true})
	if err != nil {
		t.Fatalf("default-strategy request: %v", err)
	}
	// Cold start at low load routes to the preference-first candidate:
	// the hybrid tree strategy.
	if def.Strategy != "OursTree" {
		t.Fatalf("default request decoded under %q, want OursTree (controller reroute)", def.Strategy)
	}
	if def.Result.TreeNodes == 0 {
		t.Fatal("rerouted decode proposed no draft-tree nodes — tree drafting did not run")
	}

	exp, err := eng.Generate(ctx, Request{Prompt: prompts[1], Options: core.Options{Strategy: "prompt-lookup", MaxNewTokens: 32, Seed: 2}})
	if err != nil {
		t.Fatalf("explicit request: %v", err)
	}
	if exp.Strategy != "PromptLookup" {
		t.Fatalf("explicit request decoded under %q, want PromptLookup untouched", exp.Strategy)
	}

	mm := eng.Metrics()
	if mm.Adapt != AdaptOn {
		t.Fatalf("Adapt = %q, want on", mm.Adapt)
	}
	if mm.AdaptReroutes == 0 {
		t.Fatal("controller applied no reroutes")
	}
	if mm.AdaptBudgetResizes == 0 {
		t.Fatal("controller sized no budgets")
	}
	if mm.AdaptShadowed != 0 {
		t.Fatalf("AdaptShadowed = %d in on mode, want 0", mm.AdaptShadowed)
	}
}

// TestAdaptOnExplicitConfigByteIdentical: the controller may only
// change WHICH configuration runs — a fully pinned (strategy, budget,
// seed) request must decode byte-identically with the controller on,
// off, or shadowing.
func TestAdaptOnExplicitConfigByteIdentical(t *testing.T) {
	m, prompts := fixture(t)
	cfgs := []Config{
		{Workers: 2, CacheSize: -1, NoDedup: true},
		{Workers: 2, CacheSize: -1, NoDedup: true, Adapt: AdaptShadow},
		{Workers: 2, CacheSize: -1, NoDedup: true, Adapt: AdaptOn},
	}
	ctx := context.Background()
	for i, p := range prompts[:4] {
		req := Request{Prompt: p, Options: core.Options{Strategy: "ours-tree", TreeBudget: 48, MaxNewTokens: 40, Seed: int64(i), Temperature: 0.8}}
		var ref *Response
		for j, cfg := range cfgs {
			eng := NewEngine(m, cfg)
			resp, err := eng.Generate(ctx, req)
			eng.Close()
			if err != nil {
				t.Fatalf("prompt %d engine %d: %v", i, j, err)
			}
			if j == 0 {
				ref = resp
				continue
			}
			if resp.Result.Text != ref.Result.Text || resp.Result.Steps != ref.Result.Steps {
				t.Fatalf("prompt %d: adapt config %d diverged from off for a pinned (strategy,budget,seed)", i, j)
			}
		}
	}
}

// TestStrategyAcceptDepthHistAgrees: the per-strategy accept-depth
// histograms must partition the global one — same buckets, summing to
// the same mass — since the controller reads the per-strategy view.
func TestStrategyAcceptDepthHistAgrees(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: -1, NoDedup: true})
	defer eng.Close()
	ctx := context.Background()
	for i, p := range prompts[:6] {
		strat := "ours"
		if i%2 == 1 {
			strat = "ours-tree"
		}
		if _, err := eng.Generate(ctx, Request{Prompt: p, Options: core.Options{Strategy: strat, MaxNewTokens: 32, Seed: int64(i)}}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	mm := eng.Metrics()
	if len(mm.PerStrategy) < 2 {
		t.Fatalf("expected two strategies, got %v", len(mm.PerStrategy))
	}
	sum := make([]uint64, len(mm.AcceptDepthHist))
	for name, sm := range mm.PerStrategy {
		if len(sm.AcceptDepthHist) != len(mm.AcceptDepthHist) {
			t.Fatalf("strategy %s hist has %d buckets, global %d", name, len(sm.AcceptDepthHist), len(mm.AcceptDepthHist))
		}
		var mass uint64
		for i, v := range sm.AcceptDepthHist {
			sum[i] += v
			mass += v
		}
		if mass == 0 {
			t.Fatalf("strategy %s recorded an empty accept-depth histogram", name)
		}
	}
	for i := range sum {
		if sum[i] != mm.AcceptDepthHist[i] {
			t.Fatalf("bucket %d: per-strategy sum %d != global %d", i, sum[i], mm.AcceptDepthHist[i])
		}
	}
}

// TestAdaptPrometheusFamilies: the controller and per-strategy depth
// families render in the text exposition.
func TestAdaptPrometheusFamilies(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: -1, NoDedup: true, Adapt: AdaptShadow})
	defer eng.Close()
	if _, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: core.Options{Strategy: "ours", MaxNewTokens: 24, Seed: 7}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	eng.WritePrometheusTo(&sb, 1)
	out := sb.String()
	for _, want := range []string{
		`vgend_adapt_info{mode="shadow"} 1`,
		"vgend_adapt_decisions_total 1",
		"vgend_adapt_shadowed_total 1",
		"vgend_adapt_level 0",
		`vgend_strategy_accept_depth_total{strategy="Ours",depth="1"}`,
		`vgend_strategy_accept_depth_total{strategy="Ours",depth="16+"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}

// TestContinuousAdaptChurn: join/leave/preempt churn with the
// controller applied — mixed default-strategy, explicit-tree and
// explicit-linear traffic through a tiny preemptive batch, everything
// must complete and the controller must have decided for every
// submission. Runs under the sched-soak race+shuffle job.
func TestContinuousAdaptChurn(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{
		Scheduler: SchedContinuous, Workers: 2, MaxBatch: 2,
		PreemptQuantum: 2, QueueSize: 64, CacheSize: -1, NoDedup: true,
		Adapt: AdaptOn,
	})
	defer eng.Close()

	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Prompt: prompts[i%len(prompts)]}
			switch i % 3 {
			case 0:
				req.Options = core.Options{MaxNewTokens: 40, Seed: int64(i)}
				req.NoExplicitStrategy = true
			case 1:
				req.Options = core.Options{Strategy: "ours-tree", TreeBudget: 48, MaxNewTokens: 24, Seed: int64(i)}
			default:
				req.Options = core.Options{Strategy: "prompt-lookup", MaxNewTokens: 56, Seed: int64(i)}
			}
			resp, err := eng.Generate(context.Background(), req)
			if err != nil {
				errs <- err
				return
			}
			if resp.Err != nil {
				errs <- resp.Err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("churn request failed: %v", err)
	}
	mm := eng.Metrics()
	if mm.Completed != n {
		t.Fatalf("Completed = %d, want %d", mm.Completed, n)
	}
	if mm.AdaptDecisions != n {
		t.Fatalf("AdaptDecisions = %d, want %d", mm.AdaptDecisions, n)
	}
	if mm.AdaptBudgetResizes == 0 {
		t.Fatal("no budgets sized under churn")
	}
	if mm.Sweeps == 0 || mm.Preemptions == 0 {
		t.Fatalf("churn did not exercise the scheduler (sweeps=%d preemptions=%d)", mm.Sweeps, mm.Preemptions)
	}
}
