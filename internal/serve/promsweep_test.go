package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/promtest"
	"repro/internal/trace"
)

// TestPrometheusExpositionWellFormed sweeps the engine server's full
// text exposition — tracing on, after real traffic across strategies —
// through the promtest linter: every family must declare HELP and TYPE
// before its samples, every metric and label name must be valid, and
// every label value must be a correctly escaped quoted string. A
// malformed family silently vanishes from a real scraper; here it
// fails the build.
func TestPrometheusExpositionWellFormed(t *testing.T) {
	m, prompts := fixture(t)
	e := NewEngine(m, Config{Workers: 2, CacheSize: 8})
	defer e.Close()
	ts := httptest.NewServer(NewServer(e).WithTracer(trace.New(trace.Config{})).Handler())
	defer ts.Close()

	// Traffic across strategies (and one repeat for a cache hit) so the
	// per-strategy and cache families all materialize.
	for i, strat := range []string{"ours", "ntp", "medusa", "ours"} {
		resp := postBody(t, ts.URL, "", map[string]any{
			"prompt": prompts[i%2], "strategy": strat, "temperature": 0.6,
			"max_new_tokens": 32, "seed": 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traffic %s: status %d", strat, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	text := buf.String()

	for _, lintErr := range promtest.Lint(text) {
		t.Error(lintErr)
	}
	fams := promtest.Families(text)
	if len(fams) < 10 {
		t.Errorf("exposition has only %d families (%v); expected the full engine surface", len(fams), fams)
	}
	for _, fam := range fams {
		if !strings.HasPrefix(fam, "vgend_") {
			t.Errorf("family %s outside the vgend_ namespace", fam)
		}
	}
	for _, want := range []string{"vgend_requests_total", "vgend_info", "vgend_phase_seconds_total"} {
		found := false
		for _, fam := range fams {
			if fam == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %s missing from the exposition", want)
		}
	}
}
