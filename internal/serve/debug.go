package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/trace"
)

// This file is the server's debuggability surface: the request-ID
// middleware (every response path, including 429 sheds and 503
// backpressure, carries X-Request-ID), per-request trace assembly for
// /v1/generate, structured request logging, the /debug/requests and
// /debug/trace flight-recorder endpoints, and the per-phase duration
// metric family fed by the tracer.

// RequestIDHeader is the request/trace correlation header. A caller may
// supply its own ID; otherwise the server mints one. The header is
// echoed on every response, and in tracing mode the same ID keys the
// request's trace in the flight recorder (/debug/requests?id=...).
const RequestIDHeader = "X-Request-ID"

// statusWriter records the status code the handler chain wrote so the
// middleware can log it and close the request trace with it. It
// forwards Flush so NDJSON streaming keeps working through the wrap.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// middleware is the outermost handler layer: request-ID assignment and
// echo, trace creation around /v1/generate, and one structured log
// line per request. The ID header is set before the inner handler
// runs, so every response path — success, shed, backpressure, panic-
// free error — carries it.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = trace.NewID()
		}
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if s.tracer != nil && r.URL.Path == "/v1/generate" {
			tr := s.tracer.StartTrace(id)
			root := tr.Start(nil, trace.KindRequest, r.URL.Path)
			root.SetAttr("method", r.Method)
			ctx := trace.ContextWithSpan(trace.NewContext(r.Context(), tr), root)
			next.ServeHTTP(sw, r.WithContext(ctx))
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			root.SetAttrInt("status", int64(sw.status))
			root.End()
			tr.Finish(strconv.Itoa(sw.status))
		} else {
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
		}
		if s.logger != nil {
			s.logger.Info("request",
				"id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_ms", float64(time.Since(start))/float64(time.Millisecond),
			)
		}
	})
}

// debugRequestSummary is one row of the GET /debug/requests listing.
type debugRequestSummary struct {
	ID         string  `json:"id"`
	Status     string  `json:"status"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
	Dropped    int64   `json:"dropped_spans,omitempty"`
}

// handleDebugRequests lists the flight recorder's contents (the last N
// completed request traces plus the always-retained slowest-K), or with
// ?id= returns one trace in full: the span snapshots and a rendered
// tree, enough to reconstruct a request's whole dispatch/queue/decode
// history from this endpoint alone.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		snap, ok := s.tracer.Lookup(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no recorded trace %q", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"trace": snap,
			"tree":  snap.Tree(),
		})
		return
	}
	snaps := s.tracer.Completed()
	rows := make([]debugRequestSummary, 0, len(snaps))
	for _, sn := range snaps {
		rows = append(rows, debugRequestSummary{
			ID:         sn.ID,
			Status:     sn.Status,
			Start:      sn.Start.Format(time.RFC3339Nano),
			DurationMS: sn.DurationMS,
			Spans:      len(sn.Spans),
			Dropped:    sn.Dropped,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"requests":       rows,
		"traces_started": s.tracer.TracesStarted(),
	})
}

// handleDebugTrace returns one recorded trace as a raw snapshot
// (machine-readable counterpart of /debug/requests?id=).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing id parameter"))
		return
	}
	snap, ok := s.tracer.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no recorded trace %q", id))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// writePhasePrometheus appends the tracer-fed per-phase duration family
// to the text exposition. Phases are span kinds (queue, decode, draft,
// verify, ...); the family only exists in tracing mode, so the
// tracing-off exposition stays byte-identical to the pre-trace daemon.
func (s *Server) writePhasePrometheus(w io.Writer) {
	if s.tracer == nil {
		return
	}
	phases := s.tracer.PhaseSeconds()
	fmt.Fprintf(w, "# HELP vgend_phase_seconds_total Cumulative wall seconds per traced request phase (span kind).\n# TYPE vgend_phase_seconds_total counter\n")
	keys := make([]string, 0, len(phases))
	for k := range phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "vgend_phase_seconds_total{phase=%q} %g\n", k, phases[k])
	}
}
