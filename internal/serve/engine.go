// Package serve is the concurrency layer between the speculative
// decoder and its consumers: the vgend HTTP daemon, the benchmark
// harness (internal/experiments) and in-process embedders.
//
// An Engine owns a continuous scheduler over one trained model: every
// in-flight decode advances one verification sweep at a time through
// the step-wise core API, requests join the running batch the moment a
// slot frees and leave it the step they finish, and long decodes are
// preempted — checkpointed after a sweep, their session pages parked
// on the prefix trie — whenever shorter work is waiting, then resumed
// round-robin. That keeps the verifier's batch full (the regime where
// speculative decoding actually pays) and keeps one long generation
// from serializing every short request behind it, which the legacy
// worker-pool/micro-batch loop (Config.Scheduler = SchedMicroBatch,
// retained as the LoadBench baseline) provably cannot. Around the
// scheduler sit a bounded request queue with explicit backpressure, an
// LRU cache keyed on (model, prompt, options, seed) that
// short-circuits repeat generations, a single-flight table that
// collapses concurrent identical submissions onto one decode, and a
// shared prefix cache (model.SessionCache: a token-prefix trie by
// default, the legacy whole-prompt LRU on request) that reuses
// prompt-derived session state across requests — including partial
// reuse, where a prompt sharing only a token prefix with earlier
// traffic forks the cached prefix session and prepares just the
// suffix. Decoding stays deterministic per seed regardless of
// scheduling: each request carries its own RNG seed in core.Options,
// preemption checkpoints fall only between verification sweeps (which
// the step-wise loop makes output-invariant by construction), and
// decodes share nothing but the read-only model and the immutable
// cached sessions.
//
// Requests choose their decoding strategy per call (core.Options.Mode
// or the named Options.Strategy), so one daemon serves NTP, Medusa,
// Ours and PromptLookup traffic side by side with per-strategy metrics.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/core/spec/adapt"
	"repro/internal/model"
	"repro/internal/trace"
)

// Errors reported by Engine submission.
var (
	// ErrQueueFull is returned by TryGenerate when the bounded request
	// queue has no free slot — the backpressure signal the HTTP layer
	// turns into 503.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrClosed is returned for submissions after Close.
	ErrClosed = errors.New("serve: engine closed")
	// ErrUnknownModel is wrapped by fleet routing when a request names a
	// model no replica serves; the HTTP layer turns it into 400. It
	// lives here (not in internal/cluster) so the HTTP error mapping
	// needs no dependency on the cluster layer.
	ErrUnknownModel = errors.New("serve: no replica serves the requested model")
)

// ShedError is an admission-control rejection: the request was dropped
// by a load-shedding policy before consuming a queue slot or decode
// work. The HTTP layer maps it to 429 with a Retry-After header.
type ShedError struct {
	// Policy names the shedding policy that dropped the request
	// ("deadline", "priority", "budget").
	Policy string
	// Reason is the human-readable drop explanation.
	Reason string
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: request shed by %s policy: %s (retry after %s)", e.Policy, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// RetryAfterSeconds renders the backoff as whole seconds for the HTTP
// Retry-After header (minimum 1: a zero header is meaningless to
// clients).
func (e *ShedError) RetryAfterSeconds() int {
	s := int(e.RetryAfter / time.Second)
	if e.RetryAfter%time.Second != 0 {
		s++
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Priority is a request's admission class. The zero value is
// PriorityNormal, so requests that never think about priorities get the
// middle class. Engines ignore priority entirely — it exists for
// cluster-level admission policies, which shed lower classes first
// under load.
type Priority int

// Priority classes, shed in reverse order (Low first, High last).
const (
	PriorityNormal Priority = iota
	PriorityHigh
	PriorityLow
)

// String names the class as the HTTP API spells it.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityLow:
		return "low"
	}
	return "normal"
}

// ParsePriority parses the HTTP API spelling of a priority class; empty
// selects PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want high, normal or low)", s)
}

// Config sizes an Engine. Zero values select defaults.
type Config struct {
	// Scheduler selects the dispatch architecture: SchedContinuous
	// (the default) advances every in-flight decode one verification
	// sweep at a time, admitting and retiring requests at step
	// boundaries and preempting long decodes when others wait;
	// SchedMicroBatch is the legacy worker-pool loop that dedicates a
	// worker to each decode from start to finish (kept as the
	// latency-under-load baseline). NewEngine panics on any other
	// spelling; validate external input with ParseSchedulerMode.
	Scheduler string
	// MaxBatch caps concurrently running decodes under the continuous
	// scheduler — the batch the per-sweep verification is batched
	// across (default max(8, 2×Workers)). Requests past it queue, and
	// parked decodes wait for a slot. Ignored by SchedMicroBatch.
	MaxBatch int
	// PreemptQuantum is how many verification sweeps a decode may hold
	// a batch slot while other requests are waiting before it is
	// preempted: parked with its session pages pinned, its slot handed
	// over, resumed round-robin. 0 selects the default (64); negative
	// disables preemption. Ignored by SchedMicroBatch.
	PreemptQuantum int
	// Workers is the number of decode goroutines: the worker-pool size
	// under SchedMicroBatch, the per-sweep parallelism under
	// SchedContinuous (default GOMAXPROCS).
	Workers int
	// QueueSize bounds the pending-request queue (default 256). A full
	// queue blocks Generate and rejects TryGenerate.
	QueueSize int
	// BatchSize caps how many queued requests one micro-batch carries
	// to a worker (default 8; SchedMicroBatch only).
	BatchSize int
	// BatchWindow is how long the batcher lingers for a batch to fill
	// before dispatching it short (default 2ms; SchedMicroBatch only).
	BatchWindow time.Duration
	// CacheSize is the LRU capacity in generations: 0 selects the
	// default (512), negative disables caching (the benchmark harness
	// disables it so every decode pays its simulated cost).
	CacheSize int
	// PrefixCacheMode selects the shared prompt-session cache
	// implementation: PrefixCacheTrie (the default) keys sessions on
	// true token prefixes and forks cached prefix sessions over only
	// the uncached suffix; PrefixCacheWhole is the legacy whole-prompt
	// LRU; PrefixCacheOff disables session caching. Whatever the mode,
	// outputs are byte-identical — the cache only changes how much
	// session preparation is recomputed (pinned by the differential
	// harness in internal/experiments). NewEngine panics on any other
	// spelling; validate external input with ParsePrefixCacheMode.
	PrefixCacheMode string
	// PrefixCacheSize is the whole-prompt cache capacity in prompts: 0
	// selects the default (256). Negative disables session caching
	// entirely (legacy spelling of PrefixCacheOff, honoured in every
	// mode).
	PrefixCacheSize int
	// PrefixCacheBytes caps the trie cache's estimated retained memory
	// (0 selects model.DefaultTrieBytes).
	PrefixCacheBytes int64
	// DefaultTreeBudget, when positive, fills Options.TreeBudget for
	// requests that left it unset — the daemon-wide draft-tree node
	// budget behind vgend -tree-budget. Requests naming their own
	// budget are never overridden; zero leaves the decoder's default
	// (spec.DefaultTreeBudget) in charge.
	DefaultTreeBudget int
	// Adapt selects the load-aware speculation controller
	// (internal/core/spec/adapt): AdaptOff (the default) disables it;
	// AdaptShadow consults the controller for every submission and
	// records its decisions in /metrics without applying any — the
	// rollout mode; AdaptOn applies them. Applied decisions are
	// deliberately narrow so the controller stays lossless: requests
	// that named neither a mode nor a strategy
	// (Request.NoExplicitStrategy) may be rerouted to the controller's
	// strategy pick, and tree decodes that left Options.TreeBudget
	// unset get a budget sized from the live accept-depth distribution
	// (skipped when DefaultTreeBudget pins a static one). Explicit
	// strategy and budget choices are never overridden, so outputs stay
	// byte-identical per (prompt, seed, strategy, budget) whatever the
	// controller decides. The load-degradation ladder is driven by the
	// continuous scheduler's sweep signals; under SchedMicroBatch only
	// queue wait feeds it. NewEngine panics on any other spelling;
	// validate external input with ParseAdaptMode.
	Adapt string
	// NoDedup disables single-flight deduplication of identical
	// concurrent requests (diagnostics; dedup never changes outputs
	// because decodes are deterministic per (prompt, options, seed)).
	NoDedup bool
	// Admit, if set, gates every submission that would consume a queue
	// slot: a non-nil error (typically a *ShedError) rejects the
	// request before it is enqueued. Cache hits and single-flight
	// followers bypass the gate — they consume no decode work. The
	// cluster layer installs its load-shedding policy chain here, after
	// the single-flight registration, so a shed leader resolves its
	// flight with the shed error and followers retry on their own
	// behalf (see resolve).
	Admit func(ctx context.Context, req Request) error
	// StepFault, if set, is the fault-injection plane: it is consulted
	// once per verification sweep of every running decode (continuous
	// scheduler) or once per decode (micro-batch pool). A returned
	// error aborts the decode with that error (a crashed replica); a
	// hook that blocks wedges the decode — and, because sweeps are
	// synchronous, the whole scheduler — until it returns (a hung
	// replica); a hook that sleeps models a slow one. Hooks MUST honour
	// ctx and return once it dies, or Close can wedge behind them. Used
	// by the chaos/fault-injection tier (internal/experiments) to prove
	// the fleet's breakers and hedges recover; nil in production.
	StepFault func(ctx context.Context) error
}

func (c Config) withDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = SchedContinuous
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 2 * c.Workers
		if c.MaxBatch < 8 {
			c.MaxBatch = 8
		}
	}
	if c.PreemptQuantum == 0 {
		c.PreemptQuantum = 64
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.PrefixCacheSize == 0 {
		c.PrefixCacheSize = 256
	}
	if c.PrefixCacheMode == "" {
		c.PrefixCacheMode = PrefixCacheTrie
	}
	return c
}

// Prefix-cache modes (Config.PrefixCacheMode, vgend -prefix-cache).
const (
	// PrefixCacheTrie is the token-prefix trie with copy-on-extend
	// sessions (the default).
	PrefixCacheTrie = "trie"
	// PrefixCacheWhole is the legacy whole-prompt session LRU.
	PrefixCacheWhole = "whole"
	// PrefixCacheOff disables session caching.
	PrefixCacheOff = "off"
)

// Scheduler modes (Config.Scheduler, vgend -scheduler).
const (
	// SchedContinuous is the continuous batcher: join/leave at every
	// verification sweep, preemptible long decodes (the default).
	SchedContinuous = "continuous"
	// SchedMicroBatch is the legacy worker-pool micro-batch loop.
	SchedMicroBatch = "microbatch"
)

// ParseSchedulerMode validates a scheduler mode name (empty selects
// the continuous default).
func ParseSchedulerMode(s string) (string, error) {
	switch s {
	case "", SchedContinuous:
		return SchedContinuous, nil
	case SchedMicroBatch, "micro-batch", "workers":
		return SchedMicroBatch, nil
	}
	return "", fmt.Errorf("unknown scheduler mode %q (want continuous or microbatch)", s)
}

// Speculation-controller modes (Config.Adapt, vgend -adapt).
const (
	// AdaptOff disables the controller (the default).
	AdaptOff = "off"
	// AdaptOn applies controller decisions to eligible requests.
	AdaptOn = "on"
	// AdaptShadow records every decision without applying any: metrics
	// show what the controller would have done while outputs provably
	// match AdaptOff.
	AdaptShadow = "shadow"
)

// ParseAdaptMode validates an adaptive-speculation mode name (empty
// selects off).
func ParseAdaptMode(s string) (string, error) {
	switch s {
	case "", AdaptOff:
		return AdaptOff, nil
	case AdaptOn:
		return AdaptOn, nil
	case AdaptShadow:
		return AdaptShadow, nil
	}
	return "", fmt.Errorf("unknown adapt mode %q (want on, shadow or off)", s)
}

// ParsePrefixCacheMode validates a prefix-cache mode name (empty
// selects the trie default).
func ParsePrefixCacheMode(s string) (string, error) {
	switch s {
	case "", PrefixCacheTrie:
		return PrefixCacheTrie, nil
	case PrefixCacheWhole:
		return PrefixCacheWhole, nil
	case PrefixCacheOff, "none":
		return PrefixCacheOff, nil
	}
	return "", fmt.Errorf("unknown prefix-cache mode %q (want trie, whole or off)", s)
}

// Request is one generation to perform.
type Request struct {
	// Prompt is the natural-language description (wrapped in the
	// training prompt template by the decoder).
	Prompt string
	// Options forwards to core.Decoder; the zero value decodes
	// greedily in NTP mode with model defaults.
	Options core.Options
	// OnStep, if set, streams decoding steps as they complete. The
	// callback runs on the worker goroutine; streaming requests bypass
	// the cache on both read and write (a cache hit has no steps to
	// replay, and a stored result would lie about having streamed).
	// Because the callback typically captures caller-owned state (an
	// HTTP response writer), Generate does not return a streaming
	// request — even on context cancellation — until the worker is
	// done with it and the callback can no longer fire; the decode
	// loop polls the context every forward pass, so that wait stays
	// short.
	OnStep core.StepFn
	// Model names the backbone this request wants ("codellama",
	// "codet5p"); empty accepts any. A single Engine — bound to exactly
	// one model — ignores it; a cluster.Fleet routes on it and fails
	// with ErrUnknownModel when no replica serves the name.
	Model string
	// Priority is the request's admission class. Engines ignore it;
	// cluster shedding policies drop lower classes first under load.
	Priority Priority
	// Client identifies the submitter for per-client budget policies
	// (empty submitters share one anonymous bucket).
	Client string
	// NoExplicitStrategy marks a request that named neither a decoding
	// mode nor a strategy — its Options carry the fleet-wide default. A
	// fleet replica configured with its own DefaultStrategy substitutes
	// that for such requests; explicit choices are never overridden.
	NoExplicitStrategy bool
}

// Response is the outcome of one Request.
type Response struct {
	// Result is the generation (possibly partial if Err is a context
	// error). Cached and deduplicated responses share one Result value
	// across callers — treat it as immutable.
	Result *core.Result
	// Cached reports an LRU short-circuit (no decode ran).
	Cached bool
	// Deduped reports a single-flight share: an identical request was
	// already decoding, and this response rode along on its result
	// (no extra decode ran).
	Deduped bool
	// Err is the per-request error (context cancellation, ErrClosed).
	Err error
	// Wall is the worker's decode time (zero for cached responses; the
	// leader's decode time for deduplicated ones).
	Wall time.Duration
	// QueueWait is how long the request sat in the bounded queue before
	// a scheduler slot picked it up (zero for cache hits; the leader's
	// wait for deduplicated responses). Always recorded — it needs no
	// tracer — so clients can split wall time into queue vs decode.
	QueueWait time.Duration
	// Strategy is the canonical display name of the strategy that
	// decoded this response ("NTP", "Medusa", "Ours", "PromptLookup").
	// It reflects per-replica default-strategy substitution, which the
	// submitting request cannot see.
	Strategy string
	// Replica names the fleet replica that served this response (empty
	// outside fleet mode).
	Replica string
}

// task is one queued request with its completion channel.
type task struct {
	req Request
	// promptIDs is the prompt's canonical tokenization, computed once at
	// submission (it also derives key); the worker decodes from it
	// directly instead of re-encoding the prompt text.
	promptIDs []int
	ctx       context.Context
	done      chan *Response // buffered(1): workers never block on delivery
	// enqueued is when the task entered the queue; the worker accounts
	// the pickup delay as queue-wait time.
	enqueued time.Time
	// wait is the measured queue wait, recorded at pickup and echoed on
	// the Response; qspan is the queue span when the request is traced.
	wait  time.Duration
	qspan *trace.Span
	// key is the request's canonical cache key (always set); fl carries
	// the single-flight registration when this task leads one, and the
	// worker resolves the flight on completion.
	key cacheKey
	fl  *flight
}

// flight is one in-progress decode that identical concurrent requests
// share: followers block on done and read resp — x/sync/singleflight
// semantics, including error sharing.
type flight struct {
	done chan struct{}
	resp *Response
}

// Engine dispatches generation requests over a decoder worker pool.
type Engine struct {
	m        *model.Model
	cfg      Config
	queue    chan *task
	batches  chan []*task
	cache    *lruCache          // nil when disabled
	genCache model.SessionCache // nil when disabled; trie or whole-prompt LRU per cfg

	flightMu sync.Mutex // guards inflight
	inflight map[cacheKey]*flight

	// memoMu guards keyMemo, a prompt-string → canonical-token-ids memo
	// so repeat submissions (the result LRU's whole clientele) skip BPE
	// re-tokenization on the hot path. Reset wholesale when full —
	// cheaper than LRU bookkeeping and just as effective on the repeat-
	// heavy traffic it exists for. The cached slices are shared and
	// never mutated (decodes copy before appending).
	memoMu  sync.RWMutex
	keyMemo map[string][]int

	// ctrl is the adaptive speculation controller (nil when Adapt is
	// off); adaptMode is the parsed Config.Adapt.
	ctrl      *adapt.Controller
	adaptMode string

	quit chan struct{}
	wg   sync.WaitGroup

	mu     sync.RWMutex // guards closed and the enqueue/Close handoff
	closed bool

	st stats
}

// NewEngine starts a worker pool over m. The model must be fully
// trained before the first request: workers read it concurrently and
// model training is not synchronized with reads.
func NewEngine(m *model.Model, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		m:        m,
		cfg:      cfg,
		queue:    make(chan *task, cfg.QueueSize),
		batches:  make(chan []*task, cfg.Workers),
		inflight: map[cacheKey]*flight{},
		keyMemo:  map[string][]int{},
		quit:     make(chan struct{}),
	}
	if cfg.CacheSize > 0 {
		e.cache = newLRUCache(cfg.CacheSize)
	}
	// An unknown mode is programmer error (the HTTP/flag layers validate
	// their own input): panic rather than silently picking a cache with
	// a different memory profile than the one asked for — the same
	// contract as Generate's panic on an unknown strategy name.
	mode, err := ParsePrefixCacheMode(cfg.PrefixCacheMode)
	if err != nil {
		panic("serve: " + err.Error())
	}
	if cfg.PrefixCacheSize > 0 {
		switch mode {
		case PrefixCacheWhole:
			e.genCache = model.NewGenCache(cfg.PrefixCacheSize)
		case PrefixCacheTrie:
			e.genCache = model.NewTrieCache(cfg.PrefixCacheBytes)
		}
	}
	e.st.perStrategy = map[string]*strategyStats{}
	adaptMode, err := ParseAdaptMode(cfg.Adapt)
	if err != nil {
		panic("serve: " + err.Error())
	}
	e.adaptMode = adaptMode
	if adaptMode != AdaptOff {
		// Routing candidates depend on what the model was trained with:
		// without Medusa heads the head-based strategies cannot draft,
		// so routing is restricted to self-speculative and plain ones.
		cands := []string{"OursTree", "Ours", "PromptLookup", "NTP"}
		if m.Scheme() == model.SchemeNTP {
			cands = []string{"LookupTree", "PromptLookup", "NTP"}
		}
		ctrl, err := adapt.New(adapt.Config{Candidates: cands})
		if err != nil {
			panic("serve: " + err.Error())
		}
		e.ctrl = ctrl
	}
	sched, err := ParseSchedulerMode(cfg.Scheduler)
	if err != nil {
		panic("serve: " + err.Error())
	}
	switch sched {
	case SchedMicroBatch:
		e.wg.Add(1)
		go e.batcher()
		for i := 0; i < cfg.Workers; i++ {
			e.wg.Add(1)
			go e.worker()
		}
	default:
		e.wg.Add(1)
		go e.scheduler()
	}
	return e
}

// Model exposes the engine's model (the HTTP layer reports its name).
func (e *Engine) Model() *model.Model { return e.m }

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// QueueDepth reports the number of requests waiting in the queue (not
// yet picked up by the batcher).
func (e *Engine) QueueDepth() int { return len(e.queue) }

// QueueCap reports the bounded queue's capacity (admission policies
// compute occupancy against it).
func (e *Engine) QueueCap() int { return cap(e.queue) }

// Generate runs one request, blocking for a queue slot if the engine is
// saturated. The returned error (context cancellation, ErrClosed) is
// also recorded on the Response when one exists.
func (e *Engine) Generate(ctx context.Context, req Request) (*Response, error) {
	return e.submit(ctx, req, true)
}

// TryGenerate is Generate with fail-fast backpressure: if the request
// queue has no free slot it returns ErrQueueFull immediately instead of
// blocking.
func (e *Engine) TryGenerate(ctx context.Context, req Request) (*Response, error) {
	return e.submit(ctx, req, false)
}

// GenerateBatch enqueues every request before waiting on any, so the
// whole slice is in flight together; responses align index-for-index
// with reqs (never nil), with per-request failures on Response.Err.
// Determinism per seed makes the outcome independent of how the batch
// lands on workers.
func (e *Engine) GenerateBatch(ctx context.Context, reqs []Request) []*Response {
	return e.generateBatch(ctx, reqs, true)
}

func (e *Engine) generateBatch(ctx context.Context, reqs []Request, wait bool) []*Response {
	if ctx == nil {
		ctx = context.Background()
	}
	tasks := make([]*task, len(reqs))
	flights := make([]*flight, len(reqs))
	out := make([]*Response, len(reqs))
	reqs = append([]Request(nil), reqs...) // canonicalized copy; the caller's slice stays untouched
	for i, req := range reqs {
		if err := e.modelMismatch(req); err != nil {
			out[i] = &Response{Err: err}
			continue
		}
		req = e.applyAdapt(req)
		// Canonical options make equivalently-spelled requests share
		// cache entries and flights (see core.Options.Canonical).
		req.Options = e.canonicalOptions(req.Options)
		reqs[i] = req
		e.st.request(req.Options.StrategyLabel())
		ids, key := e.canonicalize(req)
		if resp := e.cacheLookup(req, key); resp != nil {
			out[i] = resp
			continue
		}
		t, f, err := e.startOrJoin(ctx, req, ids, key, wait)
		if err != nil {
			out[i] = &Response{Err: err}
			continue
		}
		tasks[i], flights[i] = t, f
	}
	for i, t := range tasks {
		if f := flights[i]; f != nil {
			resp := waitFlight(ctx, f)
			if leaderAborted(resp, ctx) || leaderShed(resp) {
				// The leader's client died (or its submission was shed),
				// not this item's: decode fresh under the batch's own
				// context and admission fate (see resolve).
				ids, key := e.canonicalize(reqs[i])
				fresh, err := e.resolve(ctx, reqs[i], ids, key, wait)
				if err != nil {
					fresh = &Response{Err: err}
				}
				resp = fresh
			}
			out[i] = resp
			continue
		}
		if t == nil {
			continue
		}
		if reqs[i].OnStep != nil {
			out[i] = <-t.done // see Request.OnStep: no early return
			continue
		}
		select {
		case out[i] = <-t.done:
		case <-ctx.Done():
			out[i] = &Response{Err: ctx.Err()}
		}
	}
	return out
}

// TryGenerateBatch is GenerateBatch with fail-fast backpressure: items
// that find no free queue slot come back with ErrQueueFull on their
// Response instead of waiting — so a big batch cannot monopolize the
// queue past its bound the way blocking enqueues would.
func (e *Engine) TryGenerateBatch(ctx context.Context, reqs []Request) []*Response {
	return e.generateBatch(ctx, reqs, false)
}

// modelMismatch reports a request naming a backbone other than this
// engine's (matching the fleet's spellings: config name or the
// daemon-flag alias without "-sim", case-folded). A single engine must
// refuse such requests rather than silently answer with the wrong
// model — the same contract a fleet enforces by routing.
func (e *Engine) modelMismatch(req Request) error {
	if req.Model == "" {
		return nil
	}
	want := strings.ToLower(req.Model)
	own := strings.ToLower(e.m.Config().Name)
	if want == own || want == strings.TrimSuffix(own, "-sim") {
		return nil
	}
	return fmt.Errorf("%w: %q (this engine serves %s)", ErrUnknownModel, req.Model, e.m.Config().Name)
}

func (e *Engine) submit(ctx context.Context, req Request, wait bool) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.modelMismatch(req); err != nil {
		return nil, err
	}
	req = e.applyAdapt(req)
	// Canonical options make equivalently-spelled requests share cache
	// entries and flights (see core.Options.Canonical).
	req.Options = e.canonicalOptions(req.Options)
	e.st.request(req.Options.StrategyLabel())
	ids, key := e.canonicalize(req)
	if resp := e.cacheLookup(req, key); resp != nil {
		return resp, nil
	}
	return e.resolve(ctx, req, ids, key, wait)
}

// prefixProber is implemented by session caches that can report the
// deepest cached prefix of a prompt without mutating any state (the
// token-prefix trie). The controller's prefix-reuse feature degrades
// to zero on caches that cannot.
type prefixProber interface {
	CachedPrefixLen(ids []int) int
}

// adaptFeatures computes the cheap prompt features the controller
// classifies on: the canonical token count (memoized — repeat traffic
// pays nothing), a read-only prefix-trie probe, and one lexer pass.
func (e *Engine) adaptFeatures(req Request) adapt.Features {
	ids := e.canonicalIDs(req.Prompt)
	f := adapt.Features{
		PromptTokens: len(ids),
		MaxNewTokens: req.Options.MaxNewTokens,
		Construct:    adapt.Classify(req.Prompt),
	}
	if p, ok := e.genCache.(prefixProber); ok {
		f.CachedTokens = p.CachedPrefixLen(ids)
	}
	return f
}

// applyAdapt consults the speculation controller for one submission.
// It runs BEFORE canonicalOptions, so an applied decision changes the
// request's cache/single-flight key exactly as if the client had
// spelled the chosen configuration itself — adapted and explicit
// requests for the same configuration share entries and flights. In
// shadow mode the decision is recorded and nothing changes.
func (e *Engine) applyAdapt(req Request) Request {
	if e.ctrl == nil {
		return req
	}
	canon := req.Options.Canonical()
	d := e.ctrl.Decide(e.adaptFeatures(req), adapt.Request{
		Strategy:   canon.StrategyLabel(),
		Explicit:   !req.NoExplicitStrategy,
		TreeBudget: req.Options.TreeBudget,
	})
	if e.adaptMode != AdaptOn {
		e.st.adaptShadow()
		return req
	}
	if d.Rerouted {
		req.Options.Strategy = d.Strategy
		req.Options.Mode = 0
	}
	// Sized budgets only fill a hole the decoder would otherwise fill
	// with its static default: an explicit request budget or a pinned
	// engine-wide DefaultTreeBudget always wins.
	if d.TreeBudget > 0 && req.Options.TreeBudget <= 0 && e.cfg.DefaultTreeBudget <= 0 {
		req.Options.TreeBudget = d.TreeBudget
	}
	return req
}

// observeResult feeds a finished decode back into the controller's
// per-strategy and per-class estimates.
func (e *Engine) observeResult(req Request, label string, res *core.Result) {
	if e.ctrl == nil {
		return
	}
	f := e.adaptFeatures(req)
	e.ctrl.Observe(adapt.Outcome{
		Strategy:        label,
		Class:           adapt.ClassOf(f),
		AcceptedPerStep: res.AcceptedPerStep,
		TreeNodes:       res.TreeNodes,
		TreeBudget:      res.TreeBudget,
		CleanTokens:     len(res.CleanTokens),
		SimulatedMS:     res.SimulatedMS,
	})
}

// canonicalOptions applies the engine-level option defaults (the
// draft-tree node budget) and canonicalizes the strategy spelling so
// equivalently-spelled requests share cache entries and flights. The
// budget default runs BEFORE canonicalization so a request relying on
// the daemon default and one spelling it explicitly key identically.
func (e *Engine) canonicalOptions(o core.Options) core.Options {
	if e.cfg.DefaultTreeBudget > 0 && o.TreeBudget == 0 {
		o.TreeBudget = e.cfg.DefaultTreeBudget
	}
	return o.Canonical()
}

// canonicalize tokenizes a request's prompt exactly once, returning the
// canonical token ids (which the worker decodes from) and the derived
// cache/single-flight key. Both go through the same shared helpers the
// decoder and the prefix trie key on (model.CanonicalPromptIDs +
// model.PromptKeyString): spellings that tokenize identically — and
// therefore decode identically — share one entry, and the serving key
// space can never drift from the decoder's. Options must already be
// canonical.
func (e *Engine) canonicalize(req Request) ([]int, cacheKey) {
	ids := e.canonicalIDs(req.Prompt)
	return ids, cacheKey{prompt: model.PromptKeyString(ids), opts: req.Options}
}

// keyMemoCap bounds the tokenization memo's entry count and
// keyMemoMaxPrompt its per-entry size (see Engine.keyMemo). Together
// they cap retained memo heap at a few MiB: prompts past the size cut
// are tokenized every time instead of pinning megabytes of string per
// slot, which is the right trade — the memo exists for short repeated
// prompts, not one-off bulk payloads.
const (
	keyMemoCap       = 4096
	keyMemoMaxPrompt = 4 << 10
)

// canonicalIDs tokenizes a prompt through the memo.
func (e *Engine) canonicalIDs(prompt string) []int {
	e.memoMu.RLock()
	ids, ok := e.keyMemo[prompt]
	e.memoMu.RUnlock()
	if ok {
		return ids
	}
	ids = model.CanonicalPromptIDs(e.m.Tokenizer(), prompt)
	if len(prompt) > keyMemoMaxPrompt {
		return ids
	}
	e.memoMu.Lock()
	if len(e.keyMemo) >= keyMemoCap {
		clear(e.keyMemo)
	}
	e.keyMemo[prompt] = ids
	e.memoMu.Unlock()
	return ids
}

// requestKey is canonicalize for callers that only need the key.
func (e *Engine) requestKey(req Request) cacheKey {
	_, key := e.canonicalize(req)
	return key
}

// resolve runs the submission flow after accounting and cache lookup:
// lead a decode or join an identical in-flight one, then wait. A
// follower whose flight fails with the LEADER's context error — the
// leader's client went away, not ours — retries with a fresh
// submission rather than inheriting a cancellation it did not cause;
// each retry either becomes the new leader (decoding under this
// caller's own live context) or joins a newer flight, so the loop
// always makes progress.
func (e *Engine) resolve(ctx context.Context, req Request, ids []int, key cacheKey, wait bool) (*Response, error) {
	for {
		t, f, err := e.startOrJoin(ctx, req, ids, key, wait)
		if err != nil {
			return nil, err
		}
		if f != nil {
			resp := waitFlight(ctx, f)
			if leaderAborted(resp, ctx) || leaderShed(resp) {
				continue
			}
			return resp, resp.Err
		}
		if req.OnStep != nil {
			// No early return for streaming requests: the caller's OnStep
			// state must not outlive this call while a worker can still
			// invoke it (see Request.OnStep).
			resp := <-t.done
			return resp, resp.Err
		}
		select {
		case resp := <-t.done:
			return resp, resp.Err
		case <-ctx.Done():
			// The task stays queued; the worker will observe the dead
			// context and discard it into the buffered done channel.
			return nil, ctx.Err()
		}
	}
}

// leaderAborted reports a follower outcome that reflects the flight
// leader's context dying while this caller's own context is still
// live. Non-context errors stay shared (deterministic decodes fail
// identically on retry), as do this caller's own context errors.
func leaderAborted(resp *Response, ctx context.Context) bool {
	if resp.Err == nil || ctx.Err() != nil {
		return false
	}
	return errors.Is(resp.Err, context.Canceled) || errors.Is(resp.Err, context.DeadlineExceeded)
}

// leaderShed reports a follower outcome where the flight leader's
// SUBMISSION was refused — shed by an admission policy or bounced off a
// full queue. That fate belongs to the leader's arrival, not to the
// decode (none ever ran), so followers retry on their own behalf and
// face admission themselves rather than inheriting a drop they were
// never charged for. Each retry either leads a fresh submission (whose
// own shed error it rightfully owns) or joins a newer flight, so the
// retry loop always makes progress.
func leaderShed(resp *Response) bool {
	var shed *ShedError
	return errors.Is(resp.Err, ErrQueueFull) || errors.As(resp.Err, &shed)
}

// startOrJoin is the single-flight gate in front of the queue. The
// first submission of a (prompt, options, seed) becomes the leader: its
// task is enqueued carrying a registered flight. Identical submissions
// arriving while the leader is in flight become followers: they get
// the flight to wait on instead of a task, and no second decode runs.
// Streaming requests and disabled dedup bypass the gate entirely.
func (e *Engine) startOrJoin(ctx context.Context, req Request, ids []int, key cacheKey, wait bool) (*task, *flight, error) {
	if e.cfg.NoDedup || req.OnStep != nil {
		t, err := e.enqueue(ctx, req, ids, wait, key, nil)
		return t, nil, err
	}
	e.flightMu.Lock()
	if f, ok := e.inflight[key]; ok {
		e.flightMu.Unlock()
		e.st.dedupHit(req.Options.StrategyLabel())
		return nil, f, nil
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	e.flightMu.Unlock()
	t, err := e.enqueue(ctx, req, ids, wait, key, f)
	if err != nil {
		// Resolve the flight so followers that joined between the
		// registration and this failure do not hang; they share the
		// submission error (x/sync/singleflight semantics).
		e.resolveFlight(key, f, &Response{Err: err})
		return nil, nil, err
	}
	return t, nil, nil
}

// resolveFlight publishes a leader's outcome to its followers and
// retires the registration. The map delete precedes the broadcast so a
// request arriving after completion starts a fresh decode (or hits the
// LRU) instead of joining a finished flight.
func (e *Engine) resolveFlight(key cacheKey, f *flight, resp *Response) {
	e.flightMu.Lock()
	delete(e.inflight, key)
	e.flightMu.Unlock()
	f.resp = resp
	close(f.done)
}

// waitFlight blocks a follower on its leader's outcome. The response
// is a per-follower copy (the Result pointer is shared and immutable)
// flagged Deduped; a follower whose own context dies first detaches
// with the context error.
func waitFlight(ctx context.Context, f *flight) *Response {
	sp := trace.FromContext(ctx).Start(trace.SpanFromContext(ctx), trace.KindSingleFlight, "")
	select {
	case <-f.done:
		r := *f.resp
		r.Deduped = true
		sp.SetAttr("outcome", "shared")
		sp.End()
		return &r
	case <-ctx.Done():
		sp.SetAttr("outcome", "canceled")
		sp.End()
		return &Response{Err: ctx.Err()}
	}
}

// cacheLookup serves a request from the LRU if possible, accounting a
// hit or miss. Streaming requests never touch the cache.
func (e *Engine) cacheLookup(req Request, key cacheKey) *Response {
	if e.cache == nil || req.OnStep != nil {
		return nil
	}
	if res, ok := e.cache.get(key); ok {
		e.st.cacheHit(req.Options.StrategyLabel())
		return &Response{Result: res, Cached: true, Strategy: req.Options.StrategyLabel()}
	}
	e.st.cacheMiss()
	return nil
}

// enqueue places a task on the bounded queue. The read lock spans the
// send so Close's write lock cannot proceed while a submission is in
// flight — after Close acquires it, the queue's contents are final and
// can be drained exactly once.
func (e *Engine) enqueue(ctx context.Context, req Request, ids []int, wait bool, key cacheKey, fl *flight) (*task, error) {
	t := &task{req: req, promptIDs: ids, ctx: ctx, done: make(chan *Response, 1), key: key, fl: fl}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	tr, parent := trace.FromContext(ctx), trace.SpanFromContext(ctx)
	// Admission control sits in front of the queue: a shed request
	// never holds a slot, and because the single-flight registration
	// already happened, a shed leader publishes its drop to followers
	// (who then retry for themselves — see leaderShed).
	if e.cfg.Admit != nil {
		adm := tr.Start(parent, trace.KindAdmission, "")
		if err := e.cfg.Admit(ctx, req); err != nil {
			var shed *ShedError
			if errors.As(err, &shed) {
				adm.SetAttr("outcome", "shed")
				adm.SetAttr("policy", shed.Policy)
			} else {
				adm.SetAttr("outcome", "rejected")
			}
			adm.End()
			e.st.shed()
			return nil, err
		}
		adm.End()
	}
	t.qspan = tr.Start(parent, trace.KindQueue, "")
	t.enqueued = time.Now()
	if wait {
		select {
		case e.queue <- t:
			return t, nil
		case <-ctx.Done():
			t.qspan.SetAttr("outcome", "canceled")
			t.qspan.End()
			return nil, ctx.Err()
		}
	}
	select {
	case e.queue <- t:
		return t, nil
	default:
		t.qspan.SetAttr("outcome", "queue_full")
		t.qspan.End()
		e.st.reject()
		return nil, ErrQueueFull
	}
}

// Close stops accepting requests, drains everything already queued
// through the workers, and waits for them to exit. Safe to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// No submission can be mid-send now: enqueue holds the read lock
	// across its send, and closed gates new ones. Signal the batcher to
	// drain what remains and shut the pool down.
	close(e.quit)
	e.wg.Wait()
}

// batcher groups queued tasks into micro-batches: a batch dispatches
// when it reaches BatchSize or when BatchWindow elapses after its first
// request arrived, whichever comes first.
func (e *Engine) batcher() {
	defer e.wg.Done()
	defer close(e.batches)
	for {
		var first *task
		select {
		case first = <-e.queue:
		case <-e.quit:
			e.drain()
			return
		}
		batch := []*task{first}
		// Adaptive dispatch: batching only pays when the pool is
		// saturated (there is no vectorized forward pass to amortize),
		// so if a worker slot is free, hand the request over
		// immediately rather than lingering — lingering would
		// serialize co-arriving requests onto one worker while the
		// others idle.
		select {
		case e.batches <- batch:
			e.st.batch(len(batch))
			continue
		default:
		}
		timer := time.NewTimer(e.cfg.BatchWindow)
	fill:
		for len(batch) < e.cfg.BatchSize {
			select {
			case t := <-e.queue:
				batch = append(batch, t)
			case <-timer.C:
				break fill
			case <-e.quit:
				break fill
			}
		}
		timer.Stop()
		e.st.batch(len(batch))
		e.batches <- batch
	}
}

// drain flushes the post-Close queue remnant to the workers as final
// batches. The queue cannot grow anymore, so a bounded loop suffices.
func (e *Engine) drain() {
	var batch []*task
	flush := func() {
		if len(batch) > 0 {
			e.st.batch(len(batch))
			e.batches <- batch
			batch = nil
		}
	}
	for {
		select {
		case t := <-e.queue:
			batch = append(batch, t)
			if len(batch) == e.cfg.BatchSize {
				flush()
			}
		default:
			flush()
			return
		}
	}
}

// worker owns one decoder — sharing the engine's prefix cache — and
// serves batches until the batcher closes the feed.
func (e *Engine) worker() {
	defer e.wg.Done()
	dec := core.NewDecoder(e.m).WithSessionCache(e.genCache)
	for batch := range e.batches {
		for _, t := range batch {
			e.serveTask(dec, t)
		}
	}
}

// serveTask runs one generation and delivers its Response — to the
// submitting caller and, when the task leads a single-flight, to every
// follower sharing it.
func (e *Engine) serveTask(dec *core.Decoder, t *task) {
	wait := time.Since(t.enqueued)
	t.wait = wait
	t.pickedUp()
	e.st.queueWait(wait)
	if e.ctrl != nil {
		e.ctrl.ObserveQueueWait(wait.Seconds() * 1000)
	}
	label := t.req.Options.StrategyLabel()
	if err := t.ctx.Err(); err != nil {
		e.st.cancel()
		e.finish(t, &Response{Err: err, Strategy: label, QueueWait: wait})
		return
	}
	start := time.Now()
	var res *core.Result
	var err error
	if e.cfg.StepFault != nil {
		// Fault-injection plane (micro-batch path): the pool has no
		// per-sweep boundary, so the hook is consulted once per decode.
		err = e.cfg.StepFault(t.ctx)
		res = &core.Result{}
	}
	if err == nil {
		res, err = dec.GenerateStreamFrom(t.ctx, t.promptIDs, t.req.Options, t.req.OnStep)
	}
	wall := time.Since(start)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.st.cancel()
		} else {
			e.st.fail()
		}
		e.finish(t, &Response{Result: res, Err: err, Wall: wall, Strategy: label, QueueWait: wait})
		return
	}
	if e.cache != nil && t.req.OnStep == nil {
		e.cache.add(t.key, res)
	}
	e.st.complete(label, res, wall)
	e.observeResult(t.req, label, res)
	e.finish(t, &Response{Result: res, Wall: wall, Strategy: label, QueueWait: wait})
}

// pickedUp closes the task's queue span at scheduler/worker pickup.
func (t *task) pickedUp() {
	if t.qspan != nil {
		t.qspan.SetAttrInt("wait_us", t.wait.Microseconds())
		t.qspan.End()
		t.qspan = nil
	}
}

// finish delivers a task's response, resolving its single-flight first
// so followers observe the outcome even if the leading caller already
// detached.
func (e *Engine) finish(t *task, resp *Response) {
	if t.fl != nil {
		e.resolveFlight(t.key, t.fl, resp)
	}
	t.done <- resp
}
