package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func testServer(t *testing.T, cfg Config) (*httptest.Server, *Engine) {
	t.Helper()
	m, _ := fixture(t)
	eng := NewEngine(m, cfg)
	srv := httptest.NewServer(NewServer(eng).Handler())
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerSingleGenerate(t *testing.T) {
	srv, eng := testServer(t, Config{Workers: 2})
	resp := postJSON(t, srv.URL+"/v1/generate", GenerateRequest{
		Prompt: fixPrompts[0], Mode: "ours", Temperature: 0.6, MaxNewTokens: 48, Seed: 100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decodeBody[GenerateResult](t, resp)
	direct := core.NewDecoder(eng.Model()).Generate(fixPrompts[0], testOptions(100))
	if got.Text != direct.Text {
		t.Errorf("HTTP text diverges from direct decode")
	}
	if got.Mode != "Ours" || got.Steps != direct.Steps || got.Tokens != len(direct.CleanTokens) {
		t.Errorf("result metadata wrong: %+v", got)
	}
	if got.TokensPerSec <= 0 || got.MeanAccepted < 1 {
		t.Errorf("implausible speed metadata: %+v", got)
	}
}

func TestServerBatchGenerate(t *testing.T) {
	srv, eng := testServer(t, Config{Workers: 4, CacheSize: -1})
	prompts := fixPrompts[:8]
	resp := postJSON(t, srv.URL+"/v1/generate", GenerateRequest{
		Prompts: prompts, Mode: "ours", Temperature: 0.6, MaxNewTokens: 48, Seed: 40,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := decodeBody[map[string][]GenerateResult](t, resp)
	results := body["results"]
	if len(results) != len(prompts) {
		t.Fatalf("results = %d, want %d", len(results), len(prompts))
	}
	dec := core.NewDecoder(eng.Model())
	for i, r := range results {
		direct := dec.Generate(prompts[i], testOptions(40+int64(i)))
		if r.Text != direct.Text {
			t.Errorf("batch item %d diverges from direct decode", i)
		}
	}
}

// TestServerConcurrentLoadAndMetrics is the acceptance scenario: at
// least 8 concurrent POST /v1/generate requests, then cache hit rate
// and tokens/s visible on GET /metrics.
func TestServerConcurrentLoadAndMetrics(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 4, CacheSize: 64})
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			raw, _ := json.Marshal(GenerateRequest{
				// Half the clients repeat a prompt+seed so the cache sees hits.
				Prompt: fixPrompts[c%4], Mode: "ours", Temperature: 0.6,
				MaxNewTokens: 48, Seed: int64(c % 4),
			})
			resp, err := http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body := decodeBody[struct {
		UptimeS float64 `json:"uptime_s"`
		Engine  Metrics `json:"engine"`
	}](t, resp)
	em := body.Engine
	if em.Requests < clients {
		t.Errorf("requests=%d, want >= %d", em.Requests, clients)
	}
	if em.TokensPerSecWall <= 0 || em.TokensPerSecSim <= 0 {
		t.Errorf("tokens/s not visible: wall=%f sim=%f", em.TokensPerSecWall, em.TokensPerSecSim)
	}
	if em.CacheHits+em.CacheMisses < clients {
		t.Errorf("cache accounting missing: %+v", em)
	}
	ours, ok := em.PerMode["Ours"]
	if !ok {
		t.Fatalf("per-mode metrics missing Ours: %v", em.PerMode)
	}
	if ours.MeanAccepted < 1 {
		t.Errorf("mean accepted %f, want >= 1", ours.MeanAccepted)
	}
}

func TestServerCacheVisibleInResponse(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 2, CacheSize: 8})
	req := GenerateRequest{Prompt: fixPrompts[1], MaxNewTokens: 32, Seed: 9}
	first := decodeBody[GenerateResult](t, postJSON(t, srv.URL+"/v1/generate", req))
	second := decodeBody[GenerateResult](t, postJSON(t, srv.URL+"/v1/generate", req))
	if first.Cached {
		t.Error("first request cached")
	}
	if !second.Cached {
		t.Error("repeat request not cached")
	}
	if first.Text != second.Text {
		t.Error("cached text diverges")
	}
}

func TestServerStreamNDJSON(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 1})
	resp := postJSON(t, srv.URL+"/v1/generate", GenerateRequest{
		Prompt: fixPrompts[2], MaxNewTokens: 48, Seed: 3, Stream: true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var text strings.Builder
	for sc.Scan() {
		var ln streamLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ln)
		if !ln.Done {
			text.WriteString(ln.Text)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("only %d NDJSON lines", len(lines))
	}
	last := lines[len(lines)-1]
	if !last.Done || last.Result == nil || last.Error != "" {
		t.Fatalf("final line not a summary: %+v", last)
	}
	if text.String() != last.Result.Text {
		t.Error("streamed fragments do not reassemble the final text")
	}
	for _, ln := range lines[:len(lines)-1] {
		if ln.Step <= 0 {
			t.Errorf("step line missing step index: %+v", ln)
		}
	}
}

// TestServerStreamClientDisconnect drops the client connection
// mid-stream; the handler must wind down without the worker racing a
// write against (or past) the dying ResponseWriter — the race detector
// guards this.
func TestServerStreamClientDisconnect(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 1})
	raw, err := json.Marshal(GenerateRequest{Prompt: fixPrompts[3], Stream: true, MaxNewTokens: 400, Temperature: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/generate", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel() // drop the connection with the decode still running
	// Cleanup closes the engine, which waits for the worker to finish
	// the abandoned decode; any unsafe write surfaces under -race.
}

func TestServerStrategyField(t *testing.T) {
	srv, eng := testServer(t, Config{Workers: 2, CacheSize: -1})
	resp := postJSON(t, srv.URL+"/v1/generate", GenerateRequest{
		Prompt: fixPrompts[0], Strategy: "prompt-lookup", MaxNewTokens: 48, Seed: 5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decodeBody[GenerateResult](t, resp)
	if got.Mode != "PromptLookup" {
		t.Errorf("mode label %q, want PromptLookup", got.Mode)
	}
	direct := core.NewDecoder(eng.Model()).Generate(fixPrompts[0],
		core.Options{Strategy: "prompt-lookup", MaxNewTokens: 48, Seed: 5})
	if got.Text != direct.Text {
		t.Error("HTTP prompt-lookup decode diverges from direct decode")
	}
	// Unknown strategy name is a 400 at the API edge.
	bad := postJSON(t, srv.URL+"/v1/generate", GenerateRequest{Prompt: "a", Strategy: "warp"})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown strategy: status %d, want 400", bad.StatusCode)
	}
}

func TestServerMetricsPrometheus(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 2, CacheSize: 8})
	// Generate something so counters are non-trivial.
	postJSON(t, srv.URL+"/v1/generate", GenerateRequest{
		Prompt: fixPrompts[0], Mode: "ours", MaxNewTokens: 32, Seed: 2,
	}).Body.Close()

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE vgend_requests_total counter",
		"vgend_requests_total 1",
		"vgend_dedup_hits_total 0",
		"vgend_shed_total 0",
		"vgend_queue_wait_seconds_total",
		"vgend_queue_wait_max_seconds",
		"vgend_prefix_cache_misses_total 1",
		`vgend_strategy_requests_total{strategy="Ours"} 1`,
		"vgend_workers 2",
		"vgend_info{model=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}

	// A Prometheus-style Accept header negotiates the same format…
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	negotiated, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	negotiated.Body.Close()
	if ct := negotiated.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Accept negotiation returned %q", ct)
	}
	// …a JSON-preferring client that merely lists text/plain (axios
	// default) keeps JSON…
	jsonReq, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	jsonReq.Header.Set("Accept", "application/json, text/plain, */*")
	jsonResp, err := http.DefaultClient.Do(jsonReq)
	if err != nil {
		t.Fatal(err)
	}
	jsonResp.Body.Close()
	if ct := jsonResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("JSON-preferring Accept returned %q", ct)
	}
	// …and a bare GET keeps the JSON shape.
	plain, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2 := decodeBody[struct {
		Engine Metrics `json:"engine"`
	}](t, plain)
	if body2.Engine.Requests != 1 {
		t.Errorf("JSON metrics requests=%d, want 1", body2.Engine.Requests)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 2})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody[map[string]any](t, resp)
	if body["status"] != "ok" || body["model"] == "" {
		t.Errorf("healthz body: %v", body)
	}
}

func TestServerRequestValidation(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body GenerateRequest
	}{
		{"neither prompt nor prompts", GenerateRequest{}},
		{"both prompt and prompts", GenerateRequest{Prompt: "a", Prompts: []string{"b"}}},
		{"unknown mode", GenerateRequest{Prompt: "a", Mode: "warp"}},
		{"unknown priority", GenerateRequest{Prompt: "a", Priority: "urgent"}},
		{"stream with batch", GenerateRequest{Prompts: []string{"a", "b"}, Stream: true}},
		{"oversized batch", GenerateRequest{Prompts: make([]string, maxBatchPrompts+1)}},
	}
	for _, tc := range cases {
		resp := postJSON(t, srv.URL+"/v1/generate", tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	getResp, err := http.Get(srv.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/generate: status %d, want 405", getResp.StatusCode)
	}
}
