package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// postBody submits one /v1/generate body with an optional request ID.
func postBody(t *testing.T, url, id string, body map[string]any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	req, err := http.NewRequest(http.MethodPost, url+"/v1/generate", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set(RequestIDHeader, id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRequestIDEchoedOnErrorPaths: satellite contract — shed (429),
// queue-full (503) and bad-request (400) responses all carry the
// X-Request-ID header, echoing the caller's when one was sent and
// minting one otherwise. Without the header a failed request cannot be
// correlated with server-side traces at all.
func TestRequestIDEchoedOnErrorPaths(t *testing.T) {
	m, prompts := fixture(t)

	t.Run("shed 429", func(t *testing.T) {
		e := NewEngine(m, Config{Workers: 1, CacheSize: -1,
			Admit: func(ctx context.Context, req Request) error {
				return &ShedError{Policy: "test", Reason: "always", RetryAfter: time.Second}
			}})
		defer e.Close()
		ts := httptest.NewServer(NewServer(e).Handler())
		defer ts.Close()
		resp := postBody(t, ts.URL, "shed-echo-1", map[string]any{"prompt": prompts[0]})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", resp.StatusCode)
		}
		if got := resp.Header.Get(RequestIDHeader); got != "shed-echo-1" {
			t.Errorf("%s = %q, want shed-echo-1", RequestIDHeader, got)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("shed response lost its Retry-After header")
		}
	})

	t.Run("queue-full 503", func(t *testing.T) {
		block := make(chan struct{})
		e := NewEngine(m, Config{Workers: 1, QueueSize: 1, MaxBatch: 1, CacheSize: -1, NoDedup: true,
			StepFault: func(ctx context.Context) error {
				select {
				case <-block:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			}})
		defer e.Close()
		defer close(block)
		ts := httptest.NewServer(NewServer(e).Handler())
		defer ts.Close()
		// Saturate: the first request wedges in decode, the next fills
		// the 1-slot queue; once QueueDepth reads full, a further
		// submission must bounce with 503 — no timing dependence.
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				_, _ = e.TryGenerate(ctx, Request{Prompt: prompts[0], Options: testOptions(seed)})
			}(int64(i))
		}
		defer wg.Wait()
		defer cancel()
		deadline := time.Now().Add(5 * time.Second)
		for e.QueueDepth() < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if e.QueueDepth() < 1 {
			t.Fatal("queue never saturated")
		}
		resp := postBody(t, ts.URL, "full-echo-1", map[string]any{"prompt": prompts[1], "seed": 100})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d from a saturated queue, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get(RequestIDHeader); got != "full-echo-1" {
			t.Errorf("%s = %q, want full-echo-1", RequestIDHeader, got)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("queue-full response lost its Retry-After header")
		}
	})

	t.Run("bad request mints an ID", func(t *testing.T) {
		e := NewEngine(m, Config{Workers: 1})
		defer e.Close()
		ts := httptest.NewServer(NewServer(e).Handler())
		defer ts.Close()
		resp := postBody(t, ts.URL, "", map[string]any{"prompt": prompts[0], "mode": "bogus"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if resp.Header.Get(RequestIDHeader) == "" {
			t.Errorf("400 response carries no minted %s header", RequestIDHeader)
		}
	})
}

// TestSpanTreeShape: the recorded span tree of a preempted request has
// the canonical shape — request root, queue span, decode span with
// park spans nested under it — and the response reports its queue_ms.
// Run under -race in CI, this also exercises concurrent span claims
// from sweep workers against debug-endpoint snapshots.
func TestSpanTreeShape(t *testing.T) {
	m, prompts := fixture(t)
	e := NewEngine(m, Config{Workers: 1, Scheduler: SchedContinuous, MaxBatch: 1,
		PreemptQuantum: 1, CacheSize: -1, NoDedup: true})
	defer e.Close()
	tracer := trace.New(trace.Config{})
	ts := httptest.NewServer(NewServer(e).WithTracer(tracer).Handler())
	defer ts.Close()

	// Two concurrent decodes against one batch slot with a 1-sweep
	// quantum: whichever holds the slot parks as soon as the other
	// waits, so both traces should show preemption.
	var wg sync.WaitGroup
	ids := []string{"shape-a", "shape-b"}
	status := make([]int, len(ids))
	queueMS := make([]float64, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp := postBody(t, ts.URL, id, map[string]any{
				"prompt": prompts[i], "mode": "ours", "temperature": 0.6,
				"max_new_tokens": 48, "seed": i,
			})
			status[i] = resp.StatusCode
			var out struct {
				QueueMS float64 `json:"queue_ms"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&out)
			queueMS[i] = out.QueueMS
		}(i, id)
	}
	wg.Wait()
	for i, id := range ids {
		if status[i] != http.StatusOK {
			t.Fatalf("request %s: status %d", id, status[i])
		}
	}

	parks := 0
	for _, id := range ids {
		snap, ok := tracer.Lookup(id)
		if !ok {
			t.Fatalf("trace %s not recorded", id)
		}
		if snap.Spans[0].Kind != trace.KindRequest {
			t.Fatalf("trace %s: root kind = %s, want request", id, snap.Spans[0].Kind)
		}
		byKind := map[string][]trace.SpanSnapshot{}
		for _, sp := range snap.Spans {
			byKind[sp.Kind] = append(byKind[sp.Kind], sp)
		}
		if len(byKind[trace.KindQueue]) != 1 {
			t.Fatalf("trace %s: %d queue spans, want 1\n%s", id, len(byKind[trace.KindQueue]), snap.Tree())
		}
		if len(byKind[trace.KindDecode]) != 1 {
			t.Fatalf("trace %s: %d decode spans, want 1\n%s", id, len(byKind[trace.KindDecode]), snap.Tree())
		}
		decode := byKind[trace.KindDecode][0]
		if decode.Parent != snap.Spans[0].Index {
			t.Errorf("trace %s: decode span not a child of the request root\n%s", id, snap.Tree())
		}
		if len(byKind[trace.KindSessionPrep]) != 1 {
			t.Errorf("trace %s: missing session_prep span\n%s", id, snap.Tree())
		}
		if len(byKind[trace.KindSweep]) == 0 {
			t.Errorf("trace %s: no sweep spans\n%s", id, snap.Tree())
		}
		for _, park := range byKind[trace.KindPark] {
			parks++
			if park.Parent != decode.Index {
				t.Errorf("trace %s: park span not nested under decode\n%s", id, snap.Tree())
			}
			if park.EndMS < 0 {
				t.Errorf("trace %s: park span never closed\n%s", id, snap.Tree())
			}
		}
	}
	if parks == 0 {
		t.Error("no park spans across both traces; preemption never traced")
	}

	// Every ended span kind feeds the phase sums.
	phases := tracer.PhaseSeconds()
	for _, kind := range []string{trace.KindRequest, trace.KindQueue, trace.KindDecode, trace.KindDraft, trace.KindVerify} {
		if phases[kind] < 0 {
			t.Errorf("phase %s went negative: %g", kind, phases[kind])
		}
		if _, ok := phases[kind]; !ok {
			t.Errorf("phase %s missing from PhaseSeconds()", kind)
		}
	}
}

// TestPhaseMetricsExposed: in tracing mode /metrics gains the
// vgend_phase_seconds_total family (text exposition) and the
// phase_seconds object (JSON); without a tracer neither appears, so
// pre-trace scrapers see an unchanged surface.
func TestPhaseMetricsExposed(t *testing.T) {
	m, prompts := fixture(t)
	e := NewEngine(m, Config{Workers: 1, CacheSize: -1})
	defer e.Close()
	tracer := trace.New(trace.Config{})
	ts := httptest.NewServer(NewServer(e).WithTracer(tracer).Handler())
	defer ts.Close()
	resp := postBody(t, ts.URL, "", map[string]any{
		"prompt": prompts[0], "mode": "ours", "temperature": 0.6, "max_new_tokens": 32, "seed": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status = %d", resp.StatusCode)
	}

	prom, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(prom.Body)
	text := buf.String()
	for _, want := range []string{
		"# HELP vgend_phase_seconds_total",
		"# TYPE vgend_phase_seconds_total counter",
		fmt.Sprintf("vgend_phase_seconds_total{phase=%q}", trace.KindDecode),
		fmt.Sprintf("vgend_phase_seconds_total{phase=%q}", trace.KindQueue),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q", want)
		}
	}

	jm, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jm.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(jm.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	ph, ok := body["phase_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("JSON metrics carry no phase_seconds object: %v", body["phase_seconds"])
	}
	if _, ok := ph[trace.KindDecode]; !ok {
		t.Errorf("phase_seconds missing %q: %v", trace.KindDecode, ph)
	}
	if n, ok := body["traces_started"].(float64); !ok || n < 1 {
		t.Errorf("traces_started = %v, want >= 1", body["traces_started"])
	}

	// Tracer off: no phase family, no phase_seconds key.
	off := httptest.NewServer(NewServer(e).Handler())
	defer off.Close()
	promOff, err := http.Get(off.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer promOff.Body.Close()
	buf.Reset()
	_, _ = buf.ReadFrom(promOff.Body)
	if strings.Contains(buf.String(), "vgend_phase_seconds_total") {
		t.Error("tracing-off exposition leaks vgend_phase_seconds_total")
	}
	jmOff, err := http.Get(off.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jmOff.Body.Close()
	var bodyOff map[string]any
	if err := json.NewDecoder(jmOff.Body).Decode(&bodyOff); err != nil {
		t.Fatal(err)
	}
	if _, ok := bodyOff["phase_seconds"]; ok {
		t.Error("tracing-off JSON metrics leak phase_seconds")
	}
}

// TestDebugEndpointsAbsentWithoutTracer: the /debug surface only
// mounts in tracing mode (pprof independently behind its flag).
func TestDebugEndpointsAbsentWithoutTracer(t *testing.T) {
	m, _ := fixture(t)
	e := NewEngine(m, Config{Workers: 1})
	defer e.Close()
	ts := httptest.NewServer(NewServer(e).Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/requests", "/debug/trace?id=x", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d without tracer/pprof, want 404", path, resp.StatusCode)
		}
	}

	on := httptest.NewServer(NewServer(e).WithTracer(trace.New(trace.Config{})).WithPprof(true).Handler())
	defer on.Close()
	for _, path := range []string{"/debug/requests", "/debug/pprof/"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d with tracer+pprof, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(on.URL + "/debug/requests?id=never-recorded")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id = %d, want 404", resp.StatusCode)
	}
}
