package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

// The fixture trains one small model shared by every test; engines are
// cheap, models are not.
var (
	fixOnce    sync.Once
	fixModel   *model.Model
	fixPrompts []string
)

func fixture(tb testing.TB) (*model.Model, []string) {
	tb.Helper()
	fixOnce.Do(func() {
		examples, _ := dataset.BuildCorpus(dataset.CorpusOptions{Seed: 1, Items: 700})
		var texts []string
		for _, ex := range examples {
			texts = append(texts, model.FormatPrompt(ex.Prompt)+ex.Code)
		}
		cfg := model.CodeT5pSim()
		tk := tokenizer.Train(texts, cfg.VocabSize)
		fixModel = model.Train(tk, cfg, model.SchemeOurs, examples)
		for _, ex := range examples[:24] {
			fixPrompts = append(fixPrompts, ex.Prompt)
		}
	})
	return fixModel, fixPrompts
}

func testOptions(seed int64) core.Options {
	return core.Options{Mode: core.ModeOurs, Temperature: 0.6, MaxNewTokens: 48, Seed: seed}
}

// TestBatchMatchesDirectDecoder pins the engine's two core guarantees:
// responses align index-for-index with the submitted batch, and routing
// a decode through queue/batcher/worker changes nothing about its
// output (determinism per seed, independent of worker scheduling).
func TestBatchMatchesDirectDecoder(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 4, CacheSize: -1})
	defer eng.Close()

	reqs := make([]Request, len(prompts))
	for i, p := range prompts {
		reqs[i] = Request{Prompt: p, Options: testOptions(int64(100 + i))}
	}
	resps := eng.GenerateBatch(context.Background(), reqs)

	dec := core.NewDecoder(m)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("request %d failed: %v", i, resp.Err)
		}
		direct := dec.Generate(prompts[i], testOptions(int64(100+i)))
		if resp.Result.Text != direct.Text {
			t.Errorf("request %d: engine text diverges from direct decode\nengine: %q\ndirect: %q",
				i, resp.Result.Text, direct.Text)
		}
		if resp.Result.Steps != direct.Steps {
			t.Errorf("request %d: steps %d != direct %d", i, resp.Result.Steps, direct.Steps)
		}
	}
}

// TestBatchDeterministicAcrossRuns reruns an identical batch on a
// differently-sized pool and demands identical output.
func TestBatchDeterministicAcrossRuns(t *testing.T) {
	m, prompts := fixture(t)
	decode := func(workers int) []string {
		eng := NewEngine(m, Config{Workers: workers, CacheSize: -1})
		defer eng.Close()
		reqs := make([]Request, 8)
		for i := range reqs {
			reqs[i] = Request{Prompt: prompts[i], Options: testOptions(int64(i))}
		}
		resps := eng.GenerateBatch(context.Background(), reqs)
		out := make([]string, len(resps))
		for i, r := range resps {
			if r.Err != nil {
				t.Fatalf("request %d: %v", i, r.Err)
			}
			out[i] = r.Result.Text
		}
		return out
	}
	a, b := decode(1), decode(4)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("request %d: 1-worker and 4-worker runs diverge", i)
		}
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: 8})
	defer eng.Close()
	ctx := context.Background()
	req := Request{Prompt: prompts[0], Options: testOptions(7)}

	first, err := eng.Generate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first generation reported cached")
	}
	second, err := eng.Generate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical repeat not served from cache")
	}
	if second.Result != first.Result {
		t.Error("cache hit did not share the stored Result")
	}
	// Same prompt, different seed: a different generation, not a hit.
	other, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: testOptions(8)})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different seed served from cache")
	}

	got := eng.Metrics()
	if got.CacheHits != 1 || got.CacheMisses != 2 {
		t.Errorf("cache accounting hits=%d misses=%d, want 1/2", got.CacheHits, got.CacheMisses)
	}
	if want := 1.0 / 3.0; got.CacheHitRate < want-1e-9 || got.CacheHitRate > want+1e-9 {
		t.Errorf("hit rate %f, want %f", got.CacheHitRate, want)
	}
	if got.CacheEntries != 2 {
		t.Errorf("cache entries %d, want 2", got.CacheEntries)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	k := func(i int) cacheKey { return cacheKey{prompt: fmt.Sprintf("p%d", i)} }
	r1, r2, r3 := &core.Result{}, &core.Result{}, &core.Result{}
	c.add(k(1), r1)
	c.add(k(2), r2)
	if _, ok := c.get(k(1)); !ok { // refresh 1: now 2 is LRU
		t.Fatal("k1 missing before eviction")
	}
	c.add(k(3), r3)
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 survived eviction despite being LRU")
	}
	if got, ok := c.get(k(1)); !ok || got != r1 {
		t.Error("recently-used k1 evicted")
	}
	if got, ok := c.get(k(3)); !ok || got != r3 {
		t.Error("fresh k3 missing")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
}

// TestQueueFullBackpressure wedges the single worker mid-decode via a
// blocking OnStep, fills every pipeline slot (queue, batcher hand,
// batch channel), and checks both backpressure behaviours: TryGenerate
// fails fast with ErrQueueFull while Generate blocks until its context
// deadline. The slot census is micro-batch plumbing, so the test pins
// SchedMicroBatch; the continuous scheduler's backpressure contract is
// pinned by TestContinuousBackpressure in sched_test.go.
func TestQueueFullBackpressure(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{
		Scheduler: SchedMicroBatch,
		Workers:   1, QueueSize: 1, BatchSize: 1,
		BatchWindow: time.Millisecond, CacheSize: -1,
	})
	defer eng.Close()
	ctx := context.Background()

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	gate := func(core.StepEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	gatedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: testOptions(1), OnStep: gate})
		gatedErr <- err
	}()
	<-started // worker is now stalled inside a decode

	// With the worker stalled, exactly three more tasks fit: one in the
	// batch channel, one in the batcher's hand, one in the queue. Keep
	// filling until a rejection arrives after all slots are taken.
	successes := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		req := Request{Prompt: prompts[1], Options: testOptions(int64(successes))}
		ids, key := eng.canonicalize(req)
		_, err := eng.enqueue(ctx, req, ids, false, key, nil)
		if err == nil {
			successes++
		} else if errors.Is(err, ErrQueueFull) && successes >= 3 {
			break
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("unexpected enqueue error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (successes=%d)", successes)
		}
		time.Sleep(time.Millisecond)
	}

	// Fail-fast path: the public TryGenerate rejects immediately.
	if _, err := eng.TryGenerate(ctx, Request{Prompt: prompts[2], Options: testOptions(99)}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("TryGenerate on full queue: err=%v, want ErrQueueFull", err)
	}
	// Batch fail-fast: every item reports the rejection instead of
	// blocking past the queue bound.
	for i, resp := range eng.TryGenerateBatch(ctx, []Request{
		{Prompt: prompts[2], Options: testOptions(97)},
		{Prompt: prompts[3], Options: testOptions(98)},
	}) {
		if !errors.Is(resp.Err, ErrQueueFull) {
			t.Errorf("TryGenerateBatch item %d on full queue: err=%v, want ErrQueueFull", i, resp.Err)
		}
	}
	// Blocking path: Generate waits for a slot until its deadline.
	short, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, err := eng.Generate(short, Request{Prompt: prompts[2], Options: testOptions(99)}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Generate on full queue: err=%v, want DeadlineExceeded", err)
	}

	if got := eng.Metrics().Rejected; got < 2 {
		t.Errorf("rejected=%d, want >= 2", got)
	}

	close(release)
	if err := <-gatedErr; err != nil {
		t.Errorf("gated request failed after release: %v", err)
	}
}

// TestCancelMidGeneration cancels a request's context from inside its
// own decode loop and expects the context error back promptly.
func TestCancelMidGeneration(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: -1})
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps atomic.Int32
	resp, err := eng.Generate(ctx, Request{
		Prompt:  prompts[0],
		Options: testOptions(3),
		OnStep: func(core.StepEvent) {
			if steps.Add(1) == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	// Streaming requests never return early: the worker's own partial
	// response comes back, proving the callback can no longer fire
	// against caller state (the NDJSON handler depends on this).
	if resp == nil || resp.Result == nil {
		t.Fatal("cancelled streaming request returned before the worker finished")
	}
	if got := steps.Load(); got < 1 || got > 2 {
		t.Errorf("decode ran %d steps after cancellation, want at most one more", got)
	}
}

// TestCancelWhileQueued cancels a request that is still waiting behind
// a stalled worker; the caller unblocks immediately and the worker
// discards the dead task without decoding it.
func TestCancelWhileQueued(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, QueueSize: 4, BatchSize: 1, CacheSize: -1})

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	gate := func(core.StepEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	gatedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: testOptions(1), OnStep: gate})
		gatedErr <- err
	}()
	<-started

	ctxB, cancelB := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(ctxB, Request{Prompt: prompts[1], Options: testOptions(2)})
		queuedErr <- err
	}()
	// Requests increments at submission, so it signals B is in flight.
	for deadline := time.Now().Add(10 * time.Second); eng.Metrics().Requests < 2; {
		if time.Now().After(deadline) {
			t.Fatal("second request never submitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancelB()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request err=%v, want context.Canceled", err)
	}

	close(release)
	if err := <-gatedErr; err != nil {
		t.Errorf("gated request failed: %v", err)
	}
	eng.Close() // drains B's corpse through the worker
	if got := eng.Metrics().Canceled; got < 1 {
		t.Errorf("canceled=%d, want >= 1", got)
	}
}

func TestStreamingStepsReassembleResult(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1})
	defer eng.Close()

	var mu sync.Mutex
	var tokens int
	var text string
	var events int
	resp, err := eng.Generate(context.Background(), Request{
		Prompt:  prompts[0],
		Options: testOptions(5),
		OnStep: func(ev core.StepEvent) {
			mu.Lock()
			defer mu.Unlock()
			events++
			tokens += len(ev.Tokens)
			text += ev.Text
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if events != resp.Result.Steps {
		t.Errorf("events=%d, want one per step (%d)", events, resp.Result.Steps)
	}
	if tokens != len(resp.Result.Tokens) {
		t.Errorf("streamed %d tokens, result has %d", tokens, len(resp.Result.Tokens))
	}
	if text != resp.Result.Text {
		t.Errorf("streamed text diverges from result text")
	}
	if resp.Cached {
		t.Error("streaming request reported cached")
	}
	// Streaming must not have populated the cache either.
	again, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: testOptions(5)})
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Error("cache served a result stored by a streaming request")
	}
}

func TestCloseDrainsThenRejects(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: -1})
	if _, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: testOptions(1)}); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Generate(context.Background(), Request{Prompt: prompts[1], Options: testOptions(2)}); !errors.Is(err, ErrClosed) {
		t.Errorf("Generate after Close: err=%v, want ErrClosed", err)
	}
	if _, err := eng.TryGenerate(context.Background(), Request{Prompt: prompts[1], Options: testOptions(2)}); !errors.Is(err, ErrClosed) {
		t.Errorf("TryGenerate after Close: err=%v, want ErrClosed", err)
	}
}

// TestSingleFlightDedup is the dedup acceptance scenario: N concurrent
// identical submissions (same prompt+options+seed) perform exactly one
// decode. The single worker is wedged behind a gated streaming request
// first, so every follower provably joins while the leader is still in
// flight — no timing luck involved — and the race detector sees the
// whole exchange.
func TestSingleFlightDedup(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, QueueSize: 16, BatchSize: 1, CacheSize: -1})
	defer eng.Close()
	ctx := context.Background()

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	gate := func(core.StepEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	gatedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: testOptions(1), OnStep: gate})
		gatedErr <- err
	}()
	<-started // worker stalled: everything below queues behind it

	const clients = 8
	req := Request{Prompt: prompts[1], Options: testOptions(7)}
	resps := make([]*Response, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := eng.Generate(ctx, req)
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			resps[c] = resp
		}(c)
	}
	// All clients must be registered (leader) or joined (followers)
	// before the worker is released.
	for deadline := time.Now().Add(10 * time.Second); ; {
		mt := eng.Metrics()
		if mt.DedupHits == clients-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dedup joins never completed: %+v", mt)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if err := <-gatedErr; err != nil {
		t.Fatalf("gated request failed: %v", err)
	}

	leaders, followers := 0, 0
	for c, resp := range resps {
		if resp == nil || resp.Result == nil {
			t.Fatalf("client %d got no result", c)
		}
		if resp.Result != resps[0].Result {
			t.Errorf("client %d does not share the single decode's Result", c)
		}
		if resp.Deduped {
			followers++
		} else {
			leaders++
		}
	}
	if leaders != 1 || followers != clients-1 {
		t.Errorf("leaders=%d followers=%d, want 1/%d", leaders, followers, clients-1)
	}
	mt := eng.Metrics()
	// Exactly two decodes ran in total: the gated one and the shared one.
	if mt.Completed != 2 {
		t.Errorf("completed=%d, want exactly 2 (gate + one shared decode)", mt.Completed)
	}
	if mt.DedupHits != clients-1 {
		t.Errorf("dedup_hits=%d, want %d", mt.DedupHits, clients-1)
	}
	if mt.Inflight != 0 {
		t.Errorf("inflight=%d after completion, want 0", mt.Inflight)
	}
	// A later identical request starts fresh (the flight was retired);
	// with the LRU disabled it really decodes again.
	again, err := eng.Generate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Deduped || again.Cached {
		t.Errorf("post-completion request joined a dead flight: %+v", again)
	}
	if again.Result.Text != resps[0].Result.Text {
		t.Error("re-decode diverged from the shared decode")
	}
}

// TestDedupLeaderCancelFollowerSurvives: a follower must not inherit
// the leader's context cancellation — when the leader's client goes
// away mid-flight, the follower retries under its own live context and
// still gets a full result.
func TestDedupLeaderCancelFollowerSurvives(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, QueueSize: 16, BatchSize: 1, CacheSize: -1})
	defer eng.Close()

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	gate := func(core.StepEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	gatedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: testOptions(1), OnStep: gate})
		gatedErr <- err
	}()
	<-started // worker wedged: the leader below stays queued

	req := Request{Prompt: prompts[1], Options: testOptions(7)}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(leaderCtx, req)
		leaderErr <- err
	}()
	// The leader is registered once its flight exists.
	waitFor := func(cond func(Metrics) bool, what string) {
		for deadline := time.Now().Add(10 * time.Second); ; {
			if cond(eng.Metrics()) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never happened", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(func(mt Metrics) bool { return mt.Inflight == 1 }, "leader registration")

	followerResp := make(chan *Response, 1)
	followerErr := make(chan error, 1)
	go func() {
		resp, err := eng.Generate(context.Background(), req)
		followerResp <- resp
		followerErr <- err
	}()
	waitFor(func(mt Metrics) bool { return mt.DedupHits == 1 }, "follower join")

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err=%v, want context.Canceled", err)
	}
	close(release) // worker drains the gate, then the dead leader task, then the retry

	if err := <-followerErr; err != nil {
		t.Fatalf("follower inherited the leader's fate: %v", err)
	}
	resp := <-followerResp
	if resp == nil || resp.Result == nil || resp.Result.Text == "" {
		t.Fatalf("follower got no result: %+v", resp)
	}
	direct := core.NewDecoder(m).Generate(prompts[1], testOptions(7))
	if resp.Result.Text != direct.Text {
		t.Error("follower's retried decode diverges from direct decode")
	}
}

// TestDedupDisabled pins the NoDedup escape hatch: the same wedge as
// above yields one decode per client.
func TestDedupDisabled(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, QueueSize: 16, BatchSize: 1, CacheSize: -1, NoDedup: true})
	defer eng.Close()

	const clients = 4
	reqs := make([]Request, clients)
	for i := range reqs {
		reqs[i] = Request{Prompt: prompts[1], Options: testOptions(7)}
	}
	resps := eng.GenerateBatch(context.Background(), reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("client %d: %v", i, resp.Err)
		}
		if resp.Deduped {
			t.Errorf("client %d deduped with dedup disabled", i)
		}
	}
	mt := eng.Metrics()
	if mt.Completed != clients || mt.DedupHits != 0 {
		t.Errorf("completed=%d dedup_hits=%d, want %d/0", mt.Completed, mt.DedupHits, clients)
	}
}

// TestDedupWithinBatch: identical items inside one GenerateBatch share
// one decode too (the flight registers at submission, before waiting).
func TestDedupWithinBatch(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: -1})
	defer eng.Close()
	reqs := []Request{
		{Prompt: prompts[2], Options: testOptions(3)},
		{Prompt: prompts[2], Options: testOptions(3)},
		{Prompt: prompts[2], Options: testOptions(4)}, // different seed: own decode
	}
	resps := eng.GenerateBatch(context.Background(), reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("item %d: %v", i, resp.Err)
		}
	}
	if resps[0].Result.Text != resps[1].Result.Text {
		t.Error("identical batch items diverged")
	}
	mt := eng.Metrics()
	if mt.Completed != 2 || mt.DedupHits != 1 {
		t.Errorf("completed=%d dedup_hits=%d, want 2/1", mt.Completed, mt.DedupHits)
	}
}

// TestCacheSharedAcrossStrategySpellings: the LRU and single-flight
// keys are canonicalized, so "pl", "prompt-lookup" and the display
// name share one cache entry.
func TestCacheSharedAcrossStrategySpellings(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: 8})
	defer eng.Close()
	ctx := context.Background()
	mk := func(name string) Request {
		return Request{Prompt: prompts[0], Options: core.Options{Strategy: name, MaxNewTokens: 32, Seed: 6}}
	}
	first, err := eng.Generate(ctx, mk("prompt-lookup"))
	if err != nil {
		t.Fatal(err)
	}
	for _, alias := range []string{"pl", "PromptLookup", "promptlookup"} {
		resp, err := eng.Generate(ctx, mk(alias))
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached || resp.Result != first.Result {
			t.Errorf("spelling %q did not share the cached decode", alias)
		}
	}
	// The mode spelling of a named strategy shares too.
	if _, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: core.Options{Mode: core.ModeOurs, MaxNewTokens: 32, Seed: 6}}); err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: core.Options{Strategy: "ours", MaxNewTokens: 32, Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("mode and strategy spellings of Ours did not share a cache entry")
	}
	if got := eng.Metrics().Completed; got != 2 {
		t.Errorf("completed=%d, want 2 (one per distinct decode)", got)
	}
}

// TestPrefixCacheReuse pins cross-request prefix reuse: repeat decodes
// of one prompt under different seeds rebuild nothing but the RNG.
func TestPrefixCacheReuse(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: -1})
	defer eng.Close()
	for seed := int64(0); seed < 3; seed++ {
		if _, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: testOptions(seed)}); err != nil {
			t.Fatal(err)
		}
	}
	mt := eng.Metrics()
	if mt.PrefixCacheMisses != 1 || mt.PrefixCacheHits != 2 {
		t.Errorf("prefix cache hits=%d misses=%d, want 2/1", mt.PrefixCacheHits, mt.PrefixCacheMisses)
	}
	if mt.PrefixCacheEntries != 1 {
		t.Errorf("prefix cache entries=%d, want 1", mt.PrefixCacheEntries)
	}
}

// TestPrefixCacheModesByteIdentical runs the same workload — including
// shared-stem prompts that only a prefix trie can partially reuse —
// through engines in all three prefix-cache modes and requires
// byte-identical responses: the session cache may only change how much
// preparation is recomputed, never what is decoded.
func TestPrefixCacheModesByteIdentical(t *testing.T) {
	m, prompts := fixture(t)
	stem := prompts[0] + " The module must also expose"
	workload := []string{
		prompts[0],
		stem + " an active-high enable input en.",
		stem + " a synchronous clear input clr.",
		prompts[0], // exact repeat
	}
	run := func(mode string) []*Response {
		eng := NewEngine(m, Config{Workers: 2, CacheSize: -1, PrefixCacheMode: mode})
		defer eng.Close()
		reqs := make([]Request, len(workload))
		for i, p := range workload {
			reqs[i] = Request{Prompt: p, Options: testOptions(int64(i))}
		}
		resps := eng.GenerateBatch(context.Background(), reqs)
		mt := eng.Metrics()
		switch mode {
		case PrefixCacheOff:
			if mt.PrefixCacheEntries != 0 || mt.PrefixCacheHits+mt.PrefixCachePartialHits != 0 {
				t.Errorf("off mode cached sessions: %+v", mt)
			}
		case PrefixCacheTrie:
			if mt.PrefixCachePartialHits == 0 {
				t.Errorf("trie mode saw no partial hits on shared stems: %+v", mt)
			}
			if mt.PrefixCacheTokensSaved == 0 || mt.PrefixCacheHitRate == 0 {
				t.Errorf("trie mode reported no savings: tokens=%d rate=%g",
					mt.PrefixCacheTokensSaved, mt.PrefixCacheHitRate)
			}
		case PrefixCacheWhole:
			if mt.PrefixCachePartialHits != 0 {
				t.Errorf("whole-prompt mode reported partial hits: %+v", mt)
			}
		}
		return resps
	}
	base := run(PrefixCacheOff)
	for _, mode := range []string{PrefixCacheWhole, PrefixCacheTrie} {
		got := run(mode)
		for i := range base {
			if base[i].Err != nil || got[i].Err != nil {
				t.Fatalf("request %d failed: %v / %v", i, base[i].Err, got[i].Err)
			}
			if got[i].Result.Text != base[i].Result.Text ||
				got[i].Result.Steps != base[i].Result.Steps ||
				got[i].Result.SimulatedMS != base[i].Result.SimulatedMS {
				t.Fatalf("mode %s request %d diverged from cache-off", mode, i)
			}
		}
	}
}

// TestRequestKeyCanonical pins the shared-helper key path: requests
// whose prompts tokenize identically must share one result-cache entry
// and one single-flight key, because the key is the canonical token-id
// packing, not the raw string.
func TestRequestKeyCanonical(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1})
	defer eng.Close()
	a := eng.requestKey(Request{Prompt: prompts[0], Options: testOptions(1)})
	b := eng.requestKey(Request{Prompt: prompts[0], Options: testOptions(1)})
	if a != b {
		t.Fatal("identical requests produced different keys")
	}
	ids := model.CanonicalPromptIDs(m.Tokenizer(), prompts[0])
	if a.prompt != model.PromptKeyString(ids) {
		t.Fatal("request key does not go through the shared canonicalization helper")
	}
	if c := eng.requestKey(Request{Prompt: prompts[0] + "!", Options: testOptions(1)}); c == a {
		t.Fatal("distinct prompts share a key")
	}
}

// TestKeyMemoBounded pins the tokenization memo's memory discipline:
// repeat prompts hit the memo (same backing slice comes back), the
// memo resets wholesale at its entry cap instead of growing without
// bound, and oversized prompts are never admitted — they would pin
// megabytes of string per slot for traffic the memo wasn't built for.
func TestKeyMemoBounded(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1})
	defer eng.Close()
	a := eng.canonicalIDs(prompts[0])
	b := eng.canonicalIDs(prompts[0])
	if len(a) > 0 && &a[0] != &b[0] {
		t.Error("repeat prompt re-tokenized instead of hitting the memo")
	}
	big := strings.Repeat(prompts[0]+" ", keyMemoMaxPrompt/len(prompts[0])+2)
	eng.canonicalIDs(big)
	eng.memoMu.RLock()
	_, kept := eng.keyMemo[big]
	n := len(eng.keyMemo)
	eng.memoMu.RUnlock()
	if kept {
		t.Errorf("prompt of %d bytes admitted to the memo (cap %d)", len(big), keyMemoMaxPrompt)
	}
	if n != 1 {
		t.Errorf("memo holds %d entries, want just the small prompt", n)
	}
	for i := 0; i < keyMemoCap; i++ {
		eng.canonicalIDs(fmt.Sprintf("%s #%d", prompts[0], i))
	}
	eng.memoMu.RLock()
	n = len(eng.keyMemo)
	eng.memoMu.RUnlock()
	if n > keyMemoCap {
		t.Errorf("memo grew to %d entries past its cap %d", n, keyMemoCap)
	}
}

// TestQueueWaitAccounting pins the queue-wait metrics: with one worker
// and several concurrent requests, later tasks provably sit behind the
// pool, and both the sum and the max surface in the snapshot.
func TestQueueWaitAccounting(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: -1})
	defer eng.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, err := eng.Generate(context.Background(), Request{Prompt: prompts[c], Options: testOptions(int64(c))}); err != nil {
				t.Errorf("client %d: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	mt := eng.Metrics()
	if mt.QueueWaitSeconds <= 0 {
		t.Errorf("queue_wait_s=%f, want > 0", mt.QueueWaitSeconds)
	}
	if mt.QueueWaitMaxSeconds <= 0 || mt.QueueWaitMaxSeconds > mt.QueueWaitSeconds {
		t.Errorf("queue_wait_max_s=%f out of range (sum %f)", mt.QueueWaitMaxSeconds, mt.QueueWaitSeconds)
	}
}

// TestAdmitHookSheds pins the engine-side admission gate: a refusing
// Admit hook sheds before any queue slot is consumed, the shed counter
// moves, and cache hits bypass the gate entirely (they cost nothing).
func TestAdmitHookSheds(t *testing.T) {
	m, prompts := fixture(t)
	var allow atomic.Bool
	allow.Store(true)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: 8, Admit: func(ctx context.Context, req Request) error {
		if allow.Load() {
			return nil
		}
		return &ShedError{Policy: "test", Reason: "closed for business", RetryAfter: 2 * time.Second}
	}})
	defer eng.Close()
	ctx := context.Background()
	req := Request{Prompt: prompts[0], Options: testOptions(1)}

	if _, err := eng.Generate(ctx, req); err != nil {
		t.Fatal(err)
	}
	allow.Store(false)
	var shed *ShedError
	if _, err := eng.Generate(ctx, Request{Prompt: prompts[1], Options: testOptions(2)}); !errors.As(err, &shed) {
		t.Fatalf("err=%v, want ShedError", err)
	}
	if shed.RetryAfterSeconds() != 2 {
		t.Errorf("RetryAfterSeconds=%d, want 2", shed.RetryAfterSeconds())
	}
	// The earlier result is cached; a repeat bypasses admission.
	resp, err := eng.Generate(ctx, req)
	if err != nil || !resp.Cached {
		t.Errorf("cached repeat should bypass admission: %v %+v", err, resp)
	}
	if got := eng.Metrics().Shed; got != 1 {
		t.Errorf("shed=%d, want 1", got)
	}
}

// TestEngineModelMismatch: a single engine must refuse requests that
// name a different backbone instead of silently answering with its
// own; its own name routes under both the config and flag spellings.
func TestEngineModelMismatch(t *testing.T) {
	m, prompts := fixture(t) // CodeT5p-sim
	eng := NewEngine(m, Config{Workers: 1, CacheSize: -1})
	defer eng.Close()
	ctx := context.Background()
	for _, ok := range []string{"", "codet5p", "CodeT5p-sim", "codet5p-sim"} {
		if _, err := eng.Generate(ctx, Request{Prompt: prompts[0], Model: ok, Options: testOptions(1)}); err != nil {
			t.Errorf("model %q refused: %v", ok, err)
		}
	}
	if _, err := eng.Generate(ctx, Request{Prompt: prompts[0], Model: "codellama", Options: testOptions(1)}); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("foreign model err=%v, want ErrUnknownModel", err)
	}
	resps := eng.GenerateBatch(ctx, []Request{
		{Prompt: prompts[1], Options: testOptions(2)},
		{Prompt: prompts[1], Model: "codellama", Options: testOptions(3)},
	})
	if resps[0].Err != nil || !errors.Is(resps[1].Err, ErrUnknownModel) {
		t.Errorf("batch mismatch handling: %v / %v", resps[0].Err, resps[1].Err)
	}
}

// TestEngineStrategyRouting runs the new named strategy through the
// full engine path and checks its per-strategy accounting.
func TestEngineStrategyRouting(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: -1})
	defer eng.Close()
	opts := core.Options{Strategy: "prompt-lookup", MaxNewTokens: 48}
	resp, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	direct := core.NewDecoder(m).Generate(prompts[0], opts)
	if resp.Result.Text != direct.Text {
		t.Error("engine prompt-lookup decode diverges from direct decode")
	}
	mt := eng.Metrics()
	sm, ok := mt.PerStrategy["PromptLookup"]
	if !ok {
		t.Fatalf("per-strategy metrics missing PromptLookup: %v", mt.PerStrategy)
	}
	if sm.Requests != 1 || sm.Completed != 1 {
		t.Errorf("PromptLookup accounting: %+v", sm)
	}
}

// BenchmarkEngineBatch is the CI bench-smoke target: wall-clock
// throughput of an 8-prompt batch through the full engine path.
func BenchmarkEngineBatch(b *testing.B) {
	m, prompts := fixture(b)
	eng := NewEngine(m, Config{CacheSize: -1})
	defer eng.Close()
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Prompt: prompts[i], Options: testOptions(int64(i))}
	}
	b.ResetTimer()
	tokens := 0
	for i := 0; i < b.N; i++ {
		for _, resp := range eng.GenerateBatch(context.Background(), reqs) {
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
			tokens += len(resp.Result.CleanTokens)
		}
	}
	b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tok/s")
}
