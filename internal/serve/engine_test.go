package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

// The fixture trains one small model shared by every test; engines are
// cheap, models are not.
var (
	fixOnce    sync.Once
	fixModel   *model.Model
	fixPrompts []string
)

func fixture(tb testing.TB) (*model.Model, []string) {
	tb.Helper()
	fixOnce.Do(func() {
		examples, _ := dataset.BuildCorpus(dataset.CorpusOptions{Seed: 1, Items: 700})
		var texts []string
		for _, ex := range examples {
			texts = append(texts, model.FormatPrompt(ex.Prompt)+ex.Code)
		}
		cfg := model.CodeT5pSim()
		tk := tokenizer.Train(texts, cfg.VocabSize)
		fixModel = model.Train(tk, cfg, model.SchemeOurs, examples)
		for _, ex := range examples[:24] {
			fixPrompts = append(fixPrompts, ex.Prompt)
		}
	})
	return fixModel, fixPrompts
}

func testOptions(seed int64) core.Options {
	return core.Options{Mode: core.ModeOurs, Temperature: 0.6, MaxNewTokens: 48, Seed: seed}
}

// TestBatchMatchesDirectDecoder pins the engine's two core guarantees:
// responses align index-for-index with the submitted batch, and routing
// a decode through queue/batcher/worker changes nothing about its
// output (determinism per seed, independent of worker scheduling).
func TestBatchMatchesDirectDecoder(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 4, CacheSize: -1})
	defer eng.Close()

	reqs := make([]Request, len(prompts))
	for i, p := range prompts {
		reqs[i] = Request{Prompt: p, Options: testOptions(int64(100 + i))}
	}
	resps := eng.GenerateBatch(context.Background(), reqs)

	dec := core.NewDecoder(m)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("request %d failed: %v", i, resp.Err)
		}
		direct := dec.Generate(prompts[i], testOptions(int64(100+i)))
		if resp.Result.Text != direct.Text {
			t.Errorf("request %d: engine text diverges from direct decode\nengine: %q\ndirect: %q",
				i, resp.Result.Text, direct.Text)
		}
		if resp.Result.Steps != direct.Steps {
			t.Errorf("request %d: steps %d != direct %d", i, resp.Result.Steps, direct.Steps)
		}
	}
}

// TestBatchDeterministicAcrossRuns reruns an identical batch on a
// differently-sized pool and demands identical output.
func TestBatchDeterministicAcrossRuns(t *testing.T) {
	m, prompts := fixture(t)
	decode := func(workers int) []string {
		eng := NewEngine(m, Config{Workers: workers, CacheSize: -1})
		defer eng.Close()
		reqs := make([]Request, 8)
		for i := range reqs {
			reqs[i] = Request{Prompt: prompts[i], Options: testOptions(int64(i))}
		}
		resps := eng.GenerateBatch(context.Background(), reqs)
		out := make([]string, len(resps))
		for i, r := range resps {
			if r.Err != nil {
				t.Fatalf("request %d: %v", i, r.Err)
			}
			out[i] = r.Result.Text
		}
		return out
	}
	a, b := decode(1), decode(4)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("request %d: 1-worker and 4-worker runs diverge", i)
		}
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: 8})
	defer eng.Close()
	ctx := context.Background()
	req := Request{Prompt: prompts[0], Options: testOptions(7)}

	first, err := eng.Generate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first generation reported cached")
	}
	second, err := eng.Generate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical repeat not served from cache")
	}
	if second.Result != first.Result {
		t.Error("cache hit did not share the stored Result")
	}
	// Same prompt, different seed: a different generation, not a hit.
	other, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: testOptions(8)})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different seed served from cache")
	}

	got := eng.Metrics()
	if got.CacheHits != 1 || got.CacheMisses != 2 {
		t.Errorf("cache accounting hits=%d misses=%d, want 1/2", got.CacheHits, got.CacheMisses)
	}
	if want := 1.0 / 3.0; got.CacheHitRate < want-1e-9 || got.CacheHitRate > want+1e-9 {
		t.Errorf("hit rate %f, want %f", got.CacheHitRate, want)
	}
	if got.CacheEntries != 2 {
		t.Errorf("cache entries %d, want 2", got.CacheEntries)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	k := func(i int) cacheKey { return cacheKey{prompt: fmt.Sprintf("p%d", i)} }
	r1, r2, r3 := &core.Result{}, &core.Result{}, &core.Result{}
	c.add(k(1), r1)
	c.add(k(2), r2)
	if _, ok := c.get(k(1)); !ok { // refresh 1: now 2 is LRU
		t.Fatal("k1 missing before eviction")
	}
	c.add(k(3), r3)
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 survived eviction despite being LRU")
	}
	if got, ok := c.get(k(1)); !ok || got != r1 {
		t.Error("recently-used k1 evicted")
	}
	if got, ok := c.get(k(3)); !ok || got != r3 {
		t.Error("fresh k3 missing")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
}

// TestQueueFullBackpressure wedges the single worker mid-decode via a
// blocking OnStep, fills every pipeline slot (queue, batcher hand,
// batch channel), and checks both backpressure behaviours: TryGenerate
// fails fast with ErrQueueFull while Generate blocks until its context
// deadline.
func TestQueueFullBackpressure(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{
		Workers: 1, QueueSize: 1, BatchSize: 1,
		BatchWindow: time.Millisecond, CacheSize: -1,
	})
	defer eng.Close()
	ctx := context.Background()

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	gate := func(core.StepEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	gatedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: testOptions(1), OnStep: gate})
		gatedErr <- err
	}()
	<-started // worker is now stalled inside a decode

	// With the worker stalled, exactly three more tasks fit: one in the
	// batch channel, one in the batcher's hand, one in the queue. Keep
	// filling until a rejection arrives after all slots are taken.
	successes := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := eng.enqueue(ctx, Request{Prompt: prompts[1], Options: testOptions(int64(successes))}, false)
		if err == nil {
			successes++
		} else if errors.Is(err, ErrQueueFull) && successes >= 3 {
			break
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("unexpected enqueue error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (successes=%d)", successes)
		}
		time.Sleep(time.Millisecond)
	}

	// Fail-fast path: the public TryGenerate rejects immediately.
	if _, err := eng.TryGenerate(ctx, Request{Prompt: prompts[2], Options: testOptions(99)}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("TryGenerate on full queue: err=%v, want ErrQueueFull", err)
	}
	// Batch fail-fast: every item reports the rejection instead of
	// blocking past the queue bound.
	for i, resp := range eng.TryGenerateBatch(ctx, []Request{
		{Prompt: prompts[2], Options: testOptions(97)},
		{Prompt: prompts[3], Options: testOptions(98)},
	}) {
		if !errors.Is(resp.Err, ErrQueueFull) {
			t.Errorf("TryGenerateBatch item %d on full queue: err=%v, want ErrQueueFull", i, resp.Err)
		}
	}
	// Blocking path: Generate waits for a slot until its deadline.
	short, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, err := eng.Generate(short, Request{Prompt: prompts[2], Options: testOptions(99)}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Generate on full queue: err=%v, want DeadlineExceeded", err)
	}

	if got := eng.Metrics().Rejected; got < 2 {
		t.Errorf("rejected=%d, want >= 2", got)
	}

	close(release)
	if err := <-gatedErr; err != nil {
		t.Errorf("gated request failed after release: %v", err)
	}
}

// TestCancelMidGeneration cancels a request's context from inside its
// own decode loop and expects the context error back promptly.
func TestCancelMidGeneration(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, CacheSize: -1})
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps atomic.Int32
	resp, err := eng.Generate(ctx, Request{
		Prompt:  prompts[0],
		Options: testOptions(3),
		OnStep: func(core.StepEvent) {
			if steps.Add(1) == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	// Streaming requests never return early: the worker's own partial
	// response comes back, proving the callback can no longer fire
	// against caller state (the NDJSON handler depends on this).
	if resp == nil || resp.Result == nil {
		t.Fatal("cancelled streaming request returned before the worker finished")
	}
	if got := steps.Load(); got < 1 || got > 2 {
		t.Errorf("decode ran %d steps after cancellation, want at most one more", got)
	}
}

// TestCancelWhileQueued cancels a request that is still waiting behind
// a stalled worker; the caller unblocks immediately and the worker
// discards the dead task without decoding it.
func TestCancelWhileQueued(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1, QueueSize: 4, BatchSize: 1, CacheSize: -1})

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	gate := func(core.StepEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	gatedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: testOptions(1), OnStep: gate})
		gatedErr <- err
	}()
	<-started

	ctxB, cancelB := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(ctxB, Request{Prompt: prompts[1], Options: testOptions(2)})
		queuedErr <- err
	}()
	// Requests increments at submission, so it signals B is in flight.
	for deadline := time.Now().Add(10 * time.Second); eng.Metrics().Requests < 2; {
		if time.Now().After(deadline) {
			t.Fatal("second request never submitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancelB()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request err=%v, want context.Canceled", err)
	}

	close(release)
	if err := <-gatedErr; err != nil {
		t.Errorf("gated request failed: %v", err)
	}
	eng.Close() // drains B's corpse through the worker
	if got := eng.Metrics().Canceled; got < 1 {
		t.Errorf("canceled=%d, want >= 1", got)
	}
}

func TestStreamingStepsReassembleResult(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 1})
	defer eng.Close()

	var mu sync.Mutex
	var tokens int
	var text string
	var events int
	resp, err := eng.Generate(context.Background(), Request{
		Prompt:  prompts[0],
		Options: testOptions(5),
		OnStep: func(ev core.StepEvent) {
			mu.Lock()
			defer mu.Unlock()
			events++
			tokens += len(ev.Tokens)
			text += ev.Text
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if events != resp.Result.Steps {
		t.Errorf("events=%d, want one per step (%d)", events, resp.Result.Steps)
	}
	if tokens != len(resp.Result.Tokens) {
		t.Errorf("streamed %d tokens, result has %d", tokens, len(resp.Result.Tokens))
	}
	if text != resp.Result.Text {
		t.Errorf("streamed text diverges from result text")
	}
	if resp.Cached {
		t.Error("streaming request reported cached")
	}
	// Streaming must not have populated the cache either.
	again, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: testOptions(5)})
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Error("cache served a result stored by a streaming request")
	}
}

func TestCloseDrainsThenRejects(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, CacheSize: -1})
	if _, err := eng.Generate(context.Background(), Request{Prompt: prompts[0], Options: testOptions(1)}); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Generate(context.Background(), Request{Prompt: prompts[1], Options: testOptions(2)}); !errors.Is(err, ErrClosed) {
		t.Errorf("Generate after Close: err=%v, want ErrClosed", err)
	}
	if _, err := eng.TryGenerate(context.Background(), Request{Prompt: prompts[1], Options: testOptions(2)}); !errors.Is(err, ErrClosed) {
		t.Errorf("TryGenerate after Close: err=%v, want ErrClosed", err)
	}
}

// BenchmarkEngineBatch is the CI bench-smoke target: wall-clock
// throughput of an 8-prompt batch through the full engine path.
func BenchmarkEngineBatch(b *testing.B) {
	m, prompts := fixture(b)
	eng := NewEngine(m, Config{CacheSize: -1})
	defer eng.Close()
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Prompt: prompts[i], Options: testOptions(int64(i))}
	}
	b.ResetTimer()
	tokens := 0
	for i := 0; i < b.N; i++ {
		for _, resp := range eng.GenerateBatch(context.Background(), reqs) {
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
			tokens += len(resp.Result.CleanTokens)
		}
	}
	b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tok/s")
}
