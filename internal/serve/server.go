package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
)

// maxBatchPrompts bounds one POST /v1/generate batch; bigger requests
// get a 400 instead of an unbounded task allocation.
const maxBatchPrompts = 128

// Server exposes an Engine over HTTP: POST /v1/generate (single, batch
// and NDJSON streaming), GET /healthz and GET /metrics. It is the
// handler core of cmd/vgend, kept here so httptest can exercise it.
type Server struct {
	engine *Engine
	start  time.Time
}

// NewServer wraps an engine for HTTP serving.
func NewServer(e *Engine) *Server {
	return &Server{engine: e, start: time.Now()}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// GenerateRequest is the POST /v1/generate body. Exactly one of Prompt
// and Prompts must be set.
type GenerateRequest struct {
	// Prompt decodes a single description.
	Prompt string `json:"prompt,omitempty"`
	// Prompts decodes a batch; results align index-for-index.
	Prompts []string `json:"prompts,omitempty"`
	// Mode is "ours" (default), "medusa" or "ntp".
	Mode string `json:"mode,omitempty"`
	// Strategy selects a decoding strategy by name ("ntp", "medusa",
	// "ours", "prompt-lookup"); it supersedes Mode when set, and is the
	// only way to reach strategies the legacy mode enum cannot name.
	Strategy string `json:"strategy,omitempty"`
	// Temperature 0 decodes greedily.
	Temperature float64 `json:"temperature,omitempty"`
	// MaxNewTokens bounds the generation (0 = model default).
	MaxNewTokens int `json:"max_new_tokens,omitempty"`
	// TopK is candidates per head position (0 = default 3).
	TopK int `json:"top_k,omitempty"`
	// Seed fixes the sampling RNG; generations are deterministic given
	// (prompt, options, seed).
	Seed int64 `json:"seed,omitempty"`
	// Stream switches a single-prompt request to NDJSON: one line per
	// decoding step, then a final {"done":true,...} summary line.
	Stream bool `json:"stream,omitempty"`
}

// GenerateResult is one generation in a response body.
type GenerateResult struct {
	Text         string  `json:"text"`
	Mode         string  `json:"mode"`
	Tokens       int     `json:"tokens"`
	Steps        int     `json:"steps"`
	MeanAccepted float64 `json:"mean_accepted"`
	SimulatedMS  float64 `json:"simulated_ms"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	Cached       bool    `json:"cached"`
	WallMS       float64 `json:"wall_ms"`
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "", "ours":
		return core.ModeOurs, nil
	case "medusa":
		return core.ModeMedusa, nil
	case "ntp":
		return core.ModeNTP, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want ours, medusa or ntp)", s)
}

func (gr GenerateRequest) options() (core.Options, error) {
	opts := core.Options{
		Temperature:  gr.Temperature,
		MaxNewTokens: gr.MaxNewTokens,
		TopK:         gr.TopK,
		Seed:         gr.Seed,
	}
	if gr.Strategy != "" {
		// Validate at the API edge so a typo is a 400, not a queued
		// request that fails at decode time.
		if _, err := core.ResolveStrategy(gr.Strategy, false); err != nil {
			return core.Options{}, err
		}
		opts.Strategy = gr.Strategy
		return opts, nil
	}
	mode, err := parseMode(gr.Mode)
	if err != nil {
		return core.Options{}, err
	}
	opts.Mode = mode
	return opts, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func resultJSON(resp *Response) GenerateResult {
	res := resp.Result
	return GenerateResult{
		Text:         res.Text,
		Mode:         "", // filled by caller (result does not know it)
		Tokens:       len(res.CleanTokens),
		Steps:        res.Steps,
		MeanAccepted: res.MeanAccepted(),
		SimulatedMS:  res.SimulatedMS,
		TokensPerSec: res.TokensPerSecond(),
		Cached:       resp.Cached,
		WallMS:       float64(resp.Wall) / float64(time.Millisecond),
	}
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var gr GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&gr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	single := gr.Prompt != ""
	batch := len(gr.Prompts) > 0
	if single == batch {
		writeError(w, http.StatusBadRequest, errors.New(`set exactly one of "prompt" and "prompts"`))
		return
	}
	opts, err := gr.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	modeName := opts.StrategyLabel()

	switch {
	case gr.Stream && batch:
		writeError(w, http.StatusBadRequest, errors.New("streaming requires a single prompt"))
	case gr.Stream:
		s.streamGenerate(w, r, gr.Prompt, opts)
	case single:
		resp, err := s.engine.TryGenerate(r.Context(), Request{Prompt: gr.Prompt, Options: opts})
		if err != nil {
			s.writeEngineError(w, err)
			return
		}
		out := resultJSON(resp)
		out.Mode = modeName
		writeJSON(w, http.StatusOK, out)
	default:
		if len(gr.Prompts) > maxBatchPrompts {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("batch of %d prompts exceeds the limit of %d", len(gr.Prompts), maxBatchPrompts))
			return
		}
		reqs := make([]Request, len(gr.Prompts))
		for i, p := range gr.Prompts {
			o := opts
			// Distinct default seeds per batch item: identical prompts
			// in one batch still explore, matching how a caller would
			// seed sequential requests.
			o.Seed += int64(i)
			reqs[i] = Request{Prompt: p, Options: o}
		}
		// Fail-fast enqueue: batches obey the same queue bound as
		// single requests instead of blocking past it.
		resps := s.engine.TryGenerateBatch(r.Context(), reqs)
		results := make([]GenerateResult, 0, len(resps))
		for _, resp := range resps {
			if resp.Err != nil {
				s.writeEngineError(w, resp.Err)
				return
			}
			out := resultJSON(resp)
			out.Mode = modeName
			results = append(results, out)
		}
		writeJSON(w, http.StatusOK, map[string][]GenerateResult{"results": results})
	}
}

// writeEngineError maps engine submission errors to HTTP statuses:
// queue-full backpressure is 503 with Retry-After, client cancellation
// is 499 (nginx's convention), the rest 500.
func (s *Server) writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// 499: client went away (nginx's convention for closed requests).
		writeError(w, 499, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// streamLine is one NDJSON line of a streaming response.
type streamLine struct {
	Step   int             `json:"step,omitempty"`
	Text   string          `json:"text,omitempty"`
	Tokens int             `json:"tokens,omitempty"`
	Done   bool            `json:"done,omitempty"`
	Result *GenerateResult `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (s *Server) streamGenerate(w http.ResponseWriter, r *http.Request, prompt string, opts core.Options) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	onStep := func(ev core.StepEvent) {
		// Runs on the engine worker goroutine. Safe: for streaming
		// requests TryGenerate does not return — even when the client
		// disconnects mid-decode — until the worker is finished and
		// this callback can no longer fire, so the handler goroutine
		// never writes concurrently and the ResponseWriter never
		// outlives the handler.
		_ = enc.Encode(streamLine{Step: ev.Step, Text: ev.Text, Tokens: len(ev.Tokens)})
		if flusher != nil {
			flusher.Flush()
		}
	}
	resp, err := s.engine.TryGenerate(r.Context(), Request{Prompt: prompt, Options: opts, OnStep: onStep})
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			// Nothing streamed yet: a clean 503 is still possible.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		_ = enc.Encode(streamLine{Done: true, Error: err.Error()})
		return
	}
	out := resultJSON(resp)
	out.Mode = opts.StrategyLabel()
	_ = enc.Encode(streamLine{Done: true, Result: &out})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cfg := s.engine.Model().Config()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"model":       cfg.Name,
		"scheme":      s.engine.Model().Scheme().String(),
		"workers":     s.engine.Workers(),
		"queue_depth": s.engine.QueueDepth(),
		"uptime_s":    time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start).Seconds()
	modelName := s.engine.Model().Config().Name
	// Prometheus text exposition on request (?format=prometheus or an
	// Accept header a scraper would send); JSON stays the default.
	if wantsPrometheus(r.URL.Query().Get("format"), r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		writePrometheus(w, s.engine.Metrics(), uptime, modelName)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s": uptime,
		"model":    modelName,
		"engine":   s.engine.Metrics(),
	})
}
