package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// maxBatchPrompts bounds one POST /v1/generate batch; bigger requests
// get a 400 instead of an unbounded task allocation.
const maxBatchPrompts = 128

// Backend is what the HTTP layer serves: a single Engine or a
// multi-replica cluster.Fleet. Generation goes through the fail-fast
// submission paths (backpressure must surface, not block the handler);
// the health and metrics hooks let each backend report its own shape —
// the Engine keeps the exact pre-fleet bodies, a Fleet adds per-replica
// detail.
type Backend interface {
	TryGenerate(ctx context.Context, req Request) (*Response, error)
	TryGenerateBatch(ctx context.Context, reqs []Request) []*Response
	// Healthz returns the GET /healthz body; the handler adds uptime_s.
	Healthz() map[string]any
	// MetricsBody returns the GET /metrics JSON body; the handler adds
	// uptime_s.
	MetricsBody() map[string]any
	// WritePrometheusTo renders the GET /metrics text exposition.
	WritePrometheusTo(w io.Writer, uptimeS float64)
}

// Server exposes a Backend over HTTP: POST /v1/generate (single, batch
// and NDJSON streaming), GET /healthz, GET /metrics and — when tracing
// or pprof are enabled — the GET /debug/* surface. It is the handler
// core of cmd/vgend, kept here so httptest can exercise it.
type Server struct {
	backend Backend
	start   time.Time
	tracer  *trace.Tracer
	logger  *slog.Logger
	pprof   bool
}

// NewServer wraps a single engine for HTTP serving.
func NewServer(e *Engine) *Server {
	return NewBackendServer(e)
}

// NewBackendServer wraps any Backend (an Engine or a cluster.Fleet)
// for HTTP serving.
func NewBackendServer(b Backend) *Server {
	return &Server{backend: b, start: time.Now()}
}

// WithTracer enables request tracing: every /v1/generate request is
// assembled into a span tree, recorded in the tracer's flight
// recorder, and exposed at /debug/requests and /debug/trace; per-kind
// phase sums feed the vgend_phase_seconds_total metric family.
func (s *Server) WithTracer(t *trace.Tracer) *Server {
	s.tracer = t
	return s
}

// WithLogger enables structured request logging (one slog line per
// HTTP request, carrying the request ID).
func (s *Server) WithLogger(l *slog.Logger) *Server {
	s.logger = l
	return s
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func (s *Server) WithPprof(on bool) *Server {
	s.pprof = on
	return s
}

// Tracer exposes the server's tracer (nil when tracing is off).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Handler returns the route mux, wrapped in the request-ID/logging
// middleware so every response path — including 429 sheds and 503
// backpressure — carries the X-Request-ID header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.tracer != nil {
		mux.HandleFunc("/debug/requests", s.handleDebugRequests)
		mux.HandleFunc("/debug/trace", s.handleDebugTrace)
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.middleware(mux)
}

// GenerateRequest is the POST /v1/generate body. Exactly one of Prompt
// and Prompts must be set.
type GenerateRequest struct {
	// Prompt decodes a single description.
	Prompt string `json:"prompt,omitempty"`
	// Prompts decodes a batch; results align index-for-index.
	Prompts []string `json:"prompts,omitempty"`
	// Mode is "ours" (default), "medusa" or "ntp".
	Mode string `json:"mode,omitempty"`
	// Strategy selects a decoding strategy by name ("ntp", "medusa",
	// "ours", "prompt-lookup"); it supersedes Mode when set, and is the
	// only way to reach strategies the legacy mode enum cannot name.
	Strategy string `json:"strategy,omitempty"`
	// Temperature 0 decodes greedily.
	Temperature float64 `json:"temperature,omitempty"`
	// MaxNewTokens bounds the generation (0 = model default).
	MaxNewTokens int `json:"max_new_tokens,omitempty"`
	// TopK is candidates per head position (0 = default 3).
	TopK int `json:"top_k,omitempty"`
	// TreeBudget caps draft-tree nodes per decoding step for the tree
	// strategies (medusa-tree, lookup-tree, ours-tree); 0 selects the
	// daemon default (vgend -tree-budget, else the decoder default).
	// Negative is a 400. Linear strategies ignore it.
	TreeBudget int `json:"tree_budget,omitempty"`
	// Seed fixes the sampling RNG; generations are deterministic given
	// (prompt, options, seed).
	Seed int64 `json:"seed,omitempty"`
	// Stream switches a single-prompt request to NDJSON: one line per
	// decoding step, then a final {"done":true,...} summary line.
	Stream bool `json:"stream,omitempty"`
	// Model routes the request to replicas serving the named backbone
	// in fleet mode ("codellama", "codet5p"); empty accepts any. An
	// unknown name is a 400.
	Model string `json:"model,omitempty"`
	// Priority is the admission class: "high", "normal" (default) or
	// "low". Load-shedding policies drop lower classes first; a shed
	// request gets 429 with a Retry-After header.
	Priority string `json:"priority,omitempty"`
	// Client identifies the caller for per-client token-budget
	// throttling (empty callers share one anonymous bucket).
	Client string `json:"client,omitempty"`
}

// GenerateResult is one generation in a response body.
type GenerateResult struct {
	Text         string  `json:"text"`
	Mode         string  `json:"mode"`
	Tokens       int     `json:"tokens"`
	Steps        int     `json:"steps"`
	MeanAccepted float64 `json:"mean_accepted"`
	SimulatedMS  float64 `json:"simulated_ms"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	Cached       bool    `json:"cached"`
	WallMS       float64 `json:"wall_ms"`
	// QueueMS is the time this request spent queued before a batch slot
	// picked it up — with wall_ms it splits latency into queue vs
	// decode, which vgenc surfaces in its load summary. Omitted when the
	// backend recorded no wait (cache hits, refusals).
	QueueMS float64 `json:"queue_ms,omitempty"`
	// Replica names the fleet replica that served this generation
	// (omitted outside fleet mode, so single-engine responses are
	// byte-identical to the pre-fleet daemon's).
	Replica string `json:"replica,omitempty"`
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "", "ours":
		return core.ModeOurs, nil
	case "medusa":
		return core.ModeMedusa, nil
	case "ntp":
		return core.ModeNTP, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want ours, medusa or ntp)", s)
}

func (gr GenerateRequest) options() (core.Options, error) {
	if gr.TreeBudget < 0 {
		return core.Options{}, fmt.Errorf("tree_budget must be >= 0, got %d", gr.TreeBudget)
	}
	opts := core.Options{
		Temperature:  gr.Temperature,
		MaxNewTokens: gr.MaxNewTokens,
		TopK:         gr.TopK,
		TreeBudget:   gr.TreeBudget,
		Seed:         gr.Seed,
	}
	if gr.Strategy != "" {
		// Validate at the API edge so a typo is a 400, not a queued
		// request that fails at decode time.
		if _, err := core.ResolveStrategy(gr.Strategy, false); err != nil {
			return core.Options{}, err
		}
		opts.Strategy = gr.Strategy
		return opts, nil
	}
	mode, err := parseMode(gr.Mode)
	if err != nil {
		return core.Options{}, err
	}
	opts.Mode = mode
	return opts, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// resultJSON renders one response. The mode label prefers the
// response's own strategy (which reflects per-replica default-strategy
// substitution) and falls back to the request-side label.
func resultJSON(resp *Response, requestLabel string) GenerateResult {
	res := resp.Result
	label := resp.Strategy
	if label == "" {
		label = requestLabel
	}
	return GenerateResult{
		Text:         res.Text,
		Mode:         label,
		Tokens:       len(res.CleanTokens),
		Steps:        res.Steps,
		MeanAccepted: res.MeanAccepted(),
		SimulatedMS:  res.SimulatedMS,
		TokensPerSec: res.TokensPerSecond(),
		Cached:       resp.Cached,
		WallMS:       float64(resp.Wall) / float64(time.Millisecond),
		QueueMS:      float64(resp.QueueWait) / float64(time.Millisecond),
		Replica:      resp.Replica,
	}
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var gr GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&gr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	single := gr.Prompt != ""
	batch := len(gr.Prompts) > 0
	if single == batch {
		writeError(w, http.StatusBadRequest, errors.New(`set exactly one of "prompt" and "prompts"`))
		return
	}
	opts, err := gr.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	priority, err := ParsePriority(gr.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	modeName := opts.StrategyLabel()
	mkReq := func(prompt string, o core.Options) Request {
		return Request{
			Prompt:  prompt,
			Options: o,
			Model:   gr.Model,
			// Replica default-strategy substitution applies only when
			// the caller named neither a mode nor a strategy.
			NoExplicitStrategy: gr.Mode == "" && gr.Strategy == "",
			Priority:           priority,
			Client:             gr.Client,
		}
	}

	switch {
	case gr.Stream && batch:
		writeError(w, http.StatusBadRequest, errors.New("streaming requires a single prompt"))
	case gr.Stream:
		s.streamGenerate(w, r, mkReq(gr.Prompt, opts))
	case single:
		resp, err := s.backend.TryGenerate(r.Context(), mkReq(gr.Prompt, opts))
		if err != nil {
			s.writeEngineError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resultJSON(resp, modeName))
	default:
		if len(gr.Prompts) > maxBatchPrompts {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("batch of %d prompts exceeds the limit of %d", len(gr.Prompts), maxBatchPrompts))
			return
		}
		reqs := make([]Request, len(gr.Prompts))
		for i, p := range gr.Prompts {
			o := opts
			// Distinct default seeds per batch item: identical prompts
			// in one batch still explore, matching how a caller would
			// seed sequential requests.
			o.Seed += int64(i)
			reqs[i] = mkReq(p, o)
		}
		// Fail-fast enqueue: batches obey the same queue bound as
		// single requests instead of blocking past it.
		resps := s.backend.TryGenerateBatch(r.Context(), reqs)
		results := make([]GenerateResult, 0, len(resps))
		for _, resp := range resps {
			if resp.Err != nil {
				s.writeEngineError(w, resp.Err)
				return
			}
			results = append(results, resultJSON(resp, modeName))
		}
		writeJSON(w, http.StatusOK, map[string][]GenerateResult{"results": results})
	}
}

// writeRetryAfter is the shared overload-response helper: every path
// that refuses work for load reasons — queue-full backpressure and
// admission-control shedding alike — answers with an explicit status
// and a Retry-After header, the contract load balancers and polite
// clients expect.
func writeRetryAfter(w http.ResponseWriter, status, seconds int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
	writeError(w, status, err)
}

// writeSubmissionError maps the submission-refusal errors shared by
// the JSON and streaming paths — admission shedding (429 with the
// policy's Retry-After), queue-full backpressure (503 with
// Retry-After) and unknown model (400) — and reports whether it owned
// the error. These are exactly the failures that occur before any
// response bytes exist, so the streaming handler can reuse the mapping
// verbatim.
func writeSubmissionError(w http.ResponseWriter, err error) bool {
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		writeRetryAfter(w, http.StatusTooManyRequests, shed.RetryAfterSeconds(), err)
	case errors.Is(err, ErrQueueFull):
		writeRetryAfter(w, http.StatusServiceUnavailable, 1, err)
	case errors.Is(err, ErrUnknownModel):
		writeError(w, http.StatusBadRequest, err)
	default:
		return false
	}
	return true
}

// writeEngineError maps engine/fleet submission errors to HTTP
// statuses: the shared submission refusals (see writeSubmissionError),
// then client cancellation as 499 (nginx's convention), the rest 500.
func (s *Server) writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case writeSubmissionError(w, err):
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// 499: client went away (nginx's convention for closed requests).
		writeError(w, 499, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// streamLine is one NDJSON line of a streaming response.
type streamLine struct {
	Step   int             `json:"step,omitempty"`
	Text   string          `json:"text,omitempty"`
	Tokens int             `json:"tokens,omitempty"`
	Done   bool            `json:"done,omitempty"`
	Result *GenerateResult `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (s *Server) streamGenerate(w http.ResponseWriter, r *http.Request, req Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	req.OnStep = func(ev core.StepEvent) {
		// Runs on the engine worker goroutine. Safe: for streaming
		// requests TryGenerate does not return — even when the client
		// disconnects mid-decode — until the worker is finished and
		// this callback can no longer fire, so the handler goroutine
		// never writes concurrently and the ResponseWriter never
		// outlives the handler.
		_ = enc.Encode(streamLine{Step: ev.Step, Text: ev.Text, Tokens: len(ev.Tokens)})
		if flusher != nil {
			flusher.Flush()
		}
	}
	resp, err := s.backend.TryGenerate(r.Context(), req)
	if err != nil {
		// Submission refusals happen before anything streamed, so a
		// clean status response is still possible; anything else is
		// reported as a final NDJSON error line.
		if !writeSubmissionError(w, err) {
			_ = enc.Encode(streamLine{Done: true, Error: err.Error()})
		}
		return
	}
	out := resultJSON(resp, req.Options.StrategyLabel())
	_ = enc.Encode(streamLine{Done: true, Result: &out})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := s.backend.Healthz()
	body["uptime_s"] = time.Since(s.start).Seconds()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start).Seconds()
	// Prometheus text exposition on request (?format=prometheus or an
	// Accept header a scraper would send); JSON stays the default.
	if wantsPrometheus(r.URL.Query().Get("format"), r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.backend.WritePrometheusTo(w, uptime)
		s.writePhasePrometheus(w)
		return
	}
	body := s.backend.MetricsBody()
	body["uptime_s"] = uptime
	if s.tracer != nil {
		body["phase_seconds"] = s.tracer.PhaseSeconds()
		body["traces_started"] = s.tracer.TracesStarted()
	}
	writeJSON(w, http.StatusOK, body)
}
