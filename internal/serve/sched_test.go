package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestContinuousBackpressure is the continuous scheduler's counterpart
// of TestQueueFullBackpressure: with one batch slot wedged by a gated
// streaming decode, exactly QueueSize submissions fit before
// TryGenerate fails fast with ErrQueueFull.
func TestContinuousBackpressure(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{
		Workers: 1, MaxBatch: 1, QueueSize: 1, CacheSize: -1,
	})
	defer eng.Close()
	ctx := context.Background()

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	gate := func(core.StepEvent) {
		once.Do(func() { close(started) })
		<-release
	}
	gatedErr := make(chan error, 1)
	go func() {
		_, err := eng.Generate(ctx, Request{Prompt: prompts[0], Options: testOptions(1), OnStep: gate})
		gatedErr <- err
	}()
	<-started // the only slot is wedged mid-sweep

	// With the batch full and the scheduler blocked inside the sweep,
	// exactly QueueSize (= 1) more submissions fit. Direct internal
	// enqueues (the idiom of TestQueueFullBackpressure) avoid blocking
	// this goroutine on responses nobody can produce yet.
	successes := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		req := Request{Prompt: prompts[1], Options: testOptions(int64(successes))}
		req.Options = eng.canonicalOptions(req.Options)
		ids, key := eng.canonicalize(req)
		_, err := eng.enqueue(ctx, req, ids, false, key, nil)
		if err == nil {
			successes++
		} else if errors.Is(err, ErrQueueFull) && successes >= 1 {
			break
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("unexpected enqueue error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (successes=%d)", successes)
		}
		time.Sleep(time.Millisecond)
	}
	if successes != 1 {
		t.Fatalf("successes=%d, want exactly the 1 queue slot", successes)
	}
	// Fail-fast public path on the full queue.
	if _, err := eng.TryGenerate(ctx, Request{Prompt: prompts[2], Options: testOptions(99)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TryGenerate on full queue: err=%v, want ErrQueueFull", err)
	}
	if got := eng.Metrics().Rejected; got < 1 {
		t.Fatalf("rejected=%d, want >=1", got)
	}
	close(release)
	if err := <-gatedErr; err != nil {
		t.Fatalf("gated request failed: %v", err)
	}
}

// TestContinuousPreemptionRoundRobin: with one batch slot, a tight
// quantum and waiters present, a long decode must be preempted and
// resumed — repeatedly — and every request (long included) must still
// produce exactly the bytes a direct decoder produces. This is the
// serving-layer pin on "preemption checkpoints never change outputs".
func TestContinuousPreemptionRoundRobin(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{
		Workers: 1, MaxBatch: 1, PreemptQuantum: 2,
		QueueSize: 16, CacheSize: -1, NoDedup: true,
	})
	defer eng.Close()

	long := Request{Prompt: prompts[0], Options: core.Options{Strategy: "ntp", MaxNewTokens: 96, Seed: 7}}
	shorts := make([]Request, 4)
	for i := range shorts {
		shorts[i] = Request{Prompt: prompts[i+1], Options: core.Options{Strategy: "ours", MaxNewTokens: 16, Seed: int64(i)}}
	}
	var wg sync.WaitGroup
	resps := make([]*Response, len(shorts)+1)
	run := func(i int, req Request) {
		defer wg.Done()
		resp, err := eng.Generate(context.Background(), req)
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			return
		}
		resps[i] = resp
	}
	// Gate the long decode's first step until the shorts are provably
	// queued: preemption only fires when waiters exist, and on this tiny
	// model an ungated 96-token decode can finish before the shorts'
	// goroutines ever reach the queue.
	release := make(chan struct{})
	var once sync.Once
	longStarted := make(chan struct{})
	long.OnStep = func(core.StepEvent) {
		once.Do(func() {
			close(longStarted)
			<-release
		})
	}
	wg.Add(1)
	go run(0, long)
	<-longStarted // the single slot is wedged mid-sweep by the gate
	for i, req := range shorts {
		wg.Add(1)
		go run(i+1, req)
	}
	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shorts never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	mt := eng.Metrics()
	if mt.Preemptions < 1 || mt.Resumes < 1 {
		t.Fatalf("preemptions=%d resumes=%d, want both >=1", mt.Preemptions, mt.Resumes)
	}
	if mt.Sweeps == 0 || mt.MeanSweepOccupancy <= 0 {
		t.Fatalf("sweep accounting missing: %+v", mt)
	}
	dec := core.NewDecoder(m)
	for i, req := range append([]Request{long}, shorts...) {
		want, err := dec.GenerateCtx(context.Background(), req.Prompt, req.Options)
		if err != nil {
			t.Fatal(err)
		}
		if resps[i] == nil || resps[i].Result.Text != want.Text {
			t.Fatalf("request %d: preempted decode diverged from direct decode", i)
		}
	}
}

// TestSchedulerModesByteIdentical: the continuous scheduler (with
// churn forced by a 1-step quantum) and the legacy micro-batch pool
// must produce identical bytes for identical requests — scheduling
// architecture, like worker scheduling, is not allowed to touch
// outputs.
func TestSchedulerModesByteIdentical(t *testing.T) {
	m, prompts := fixture(t)
	reqs := make([]Request, 8)
	for i := range reqs {
		strat := []string{"ntp", "ours", "ours-tree", "prompt-lookup"}[i%4]
		reqs[i] = Request{Prompt: prompts[i], Options: core.Options{Strategy: strat, MaxNewTokens: 32, Seed: int64(i)}}
	}
	texts := make(map[string][]string)
	for _, mode := range []string{SchedContinuous, SchedMicroBatch} {
		eng := NewEngine(m, Config{
			Scheduler: mode, Workers: 2, MaxBatch: 3, PreemptQuantum: 1,
			QueueSize: 32, CacheSize: -1, NoDedup: true,
		})
		for _, resp := range eng.GenerateBatch(context.Background(), reqs) {
			if resp.Err != nil {
				t.Fatalf("%s: %v", mode, resp.Err)
			}
			texts[mode] = append(texts[mode], resp.Result.Text)
		}
		eng.Close()
	}
	for i := range reqs {
		if texts[SchedContinuous][i] != texts[SchedMicroBatch][i] {
			t.Fatalf("request %d: schedulers disagree on output bytes", i)
		}
	}
}

// TestSchedulerChurnSoak is the join/leave/preempt churn soak behind
// the sched-soak CI job (run under -race -shuffle=on there): many
// clients, mixed long/short/streaming/cancelled traffic, a tiny
// quantum and a small batch, then a full accounting check — every
// submission reaches exactly one terminal state, nothing hangs, no
// page lease outlives its decode.
func TestSchedulerChurnSoak(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{
		Workers: 2, MaxBatch: 2, PreemptQuantum: 1,
		QueueSize: 64, CacheSize: -1, NoDedup: true,
	})

	const clients, perClient = 6, 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	terminal := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				req := Request{
					Prompt:  prompts[(c*perClient+i)%len(prompts)],
					Options: core.Options{Strategy: "ours", MaxNewTokens: 8 + rng.Intn(40), Seed: int64(c*100 + i)},
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				switch rng.Intn(4) {
				case 0: // streaming
					var events int
					req.OnStep = func(core.StepEvent) { events++ }
				case 1: // cancelled mid-flight
					ctx, cancel = context.WithCancel(ctx)
					step := make(chan struct{}, 1)
					req.OnStep = func(core.StepEvent) {
						select {
						case step <- struct{}{}:
							cancel()
						default:
						}
					}
				}
				resp, err := eng.Generate(ctx, req)
				if cancel != nil {
					cancel()
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("client %d req %d: %v", c, i, err)
					continue
				}
				if resp == nil {
					t.Errorf("client %d req %d: nil response", c, i)
					continue
				}
				mu.Lock()
				terminal++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	eng.Close()

	mt := eng.Metrics()
	if terminal != clients*perClient {
		t.Fatalf("terminal responses %d, want %d", terminal, clients*perClient)
	}
	if got := mt.Completed + mt.Canceled + mt.Failed; got != clients*perClient {
		t.Fatalf("completed+canceled+failed = %d, want %d (metrics %+v)", got, clients*perClient, mt)
	}
	if mt.Failed != 0 {
		t.Fatalf("failed=%d, want 0", mt.Failed)
	}
	if mt.Preemptions < 1 || mt.Resumes < 1 {
		t.Fatalf("churn soak saw no preemption (preemptions=%d resumes=%d)", mt.Preemptions, mt.Resumes)
	}
	if mt.PrefixCachePinnedPages != 0 || mt.PrefixCachePinnedBytes != 0 {
		t.Fatalf("page leases leaked after drain: %+v", mt)
	}
	if mt.SchedRunning != 0 || mt.SchedParked != 0 {
		t.Fatalf("scheduler drained dirty: running=%d parked=%d", mt.SchedRunning, mt.SchedParked)
	}
}

// TestContinuousMetricsSurface sanity-checks the new scheduler fields
// end to end: occupancy gauges bounded by MaxBatch, sweep occupancy
// positive after traffic, and the Prometheus families present.
func TestContinuousMetricsSurface(t *testing.T) {
	m, prompts := fixture(t)
	eng := NewEngine(m, Config{Workers: 2, MaxBatch: 4, CacheSize: -1})
	defer eng.Close()
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{Prompt: prompts[i], Options: testOptions(int64(i))}
	}
	eng.GenerateBatch(context.Background(), reqs)
	mt := eng.Metrics()
	if mt.Scheduler != SchedContinuous || mt.SchedMaxBatch != 4 {
		t.Fatalf("scheduler identity wrong: %+v", mt)
	}
	if mt.Sweeps == 0 || mt.MeanSweepOccupancy <= 0 {
		t.Fatalf("no sweeps accounted: %+v", mt)
	}
	if mt.SchedOccupancy < 0 || mt.SchedOccupancy > 1 {
		t.Fatalf("occupancy %f out of [0,1]", mt.SchedOccupancy)
	}
	var b strings.Builder
	eng.WritePrometheusTo(&b, 1)
	for _, fam := range []string{
		"vgend_sched_info", "vgend_sched_sweeps_total", "vgend_sched_preemptions_total",
		"vgend_sched_occupancy", "vgend_prefix_pinned_pages",
	} {
		if !strings.Contains(b.String(), fam) {
			t.Fatalf("prometheus output missing %s", fam)
		}
	}
}
