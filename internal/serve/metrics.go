package serve

import (
	"io"
	"sync"
	"time"

	"repro/internal/core"
)

// stats accumulates engine counters under one mutex; contention is
// negligible next to a decode.
type stats struct {
	mu        sync.Mutex
	requests  uint64
	completed uint64
	canceled  uint64
	failed    uint64
	rejected  uint64
	shedded   uint64

	queueWaitSum time.Duration
	queueWaitMax time.Duration

	cacheHits   uint64
	cacheMisses uint64
	dedupHits   uint64

	batches      uint64
	batchedTasks uint64

	// Continuous-scheduler counters: sweeps and the tasks they
	// stepped (their ratio is the mean batch occupancy), preemptions
	// (decodes parked mid-flight) and resumes; running/parked are the
	// scheduler's current-state gauges, refreshed every loop pass.
	sweeps      uint64
	sweptTasks  uint64
	preemptions uint64
	resumes     uint64
	running     int
	parked      int

	cleanTokens uint64
	rawTokens   uint64
	steps       uint64
	wall        time.Duration
	simMS       float64

	// acceptHist counts decoding steps by accepted length: bucket i
	// holds steps that emitted i+1 tokens, the last bucket everything
	// at or past AcceptDepthBuckets. Speculative wins live in the
	// bucket mass above index 0.
	acceptHist [AcceptDepthBuckets]uint64
	// treeNodes/treeBudget total draft-tree nodes proposed and the
	// node budget available across tree-drafting decodes; their ratio
	// is the budget-utilization gauge.
	treeNodes  uint64
	treeBudget uint64
	// grammarPruned/grammarDraftTokens total the draft nodes withheld
	// by the grammar oracle and the nodes contributed by synthesized
	// construct chains (grammar strategies only).
	grammarPruned      uint64
	grammarDraftTokens uint64

	// adaptShadowed counts speculation-controller decisions recorded
	// but not applied (Config.Adapt = AdaptShadow).
	adaptShadowed uint64

	perStrategy map[string]*strategyStats
}

type strategyStats struct {
	requests           uint64
	completed          uint64
	cacheHits          uint64
	dedupHits          uint64
	steps              uint64
	rawTokens          uint64
	cleanTokens        uint64
	simMS              float64
	treeNodes          uint64
	treeBudget         uint64
	grammarPruned      uint64
	grammarDraftTokens uint64
	// acceptHist is the per-strategy slice of the global accept-depth
	// histogram — the distribution the adaptive speculation controller
	// sizes this strategy's tree budget from, exported so metrics agree
	// with what the controller sees.
	acceptHist [AcceptDepthBuckets]uint64
}

// AcceptDepthBuckets sizes the acceptance-depth histogram: buckets
// 1..AcceptDepthBuckets-1 tokens per step, plus one overflow bucket.
const AcceptDepthBuckets = 16

func (s *stats) strategy(label string) *strategyStats {
	ss := s.perStrategy[label]
	if ss == nil {
		ss = &strategyStats{}
		s.perStrategy[label] = ss
	}
	return ss
}

func (s *stats) request(label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.strategy(label).requests++
}

func (s *stats) cacheHit(label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheHits++
	s.strategy(label).cacheHits++
}

func (s *stats) cacheMiss() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheMisses++
}

func (s *stats) dedupHit(label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dedupHits++
	s.strategy(label).dedupHits++
}

func (s *stats) reject() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rejected++
}

func (s *stats) shed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shedded++
}

// queueWait accounts the delay between a task entering the queue and a
// worker picking it up (recorded for every dequeued task, including
// ones whose context died while waiting — that wait is precisely the
// signal).
func (s *stats) queueWait(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queueWaitSum += d
	if d > s.queueWaitMax {
		s.queueWaitMax = d
	}
}

func (s *stats) adaptShadow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adaptShadowed++
}

func (s *stats) cancel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.canceled++
}

func (s *stats) fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failed++
}

func (s *stats) batch(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.batchedTasks += uint64(n)
}

func (s *stats) sweep(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweeps++
	s.sweptTasks += uint64(n)
}

func (s *stats) preempt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.preemptions++
}

func (s *stats) resume() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resumes++
}

func (s *stats) schedGauges(running, parked int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running, s.parked = running, parked
}

func (s *stats) complete(label string, res *core.Result, wall time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.completed++
	s.cleanTokens += uint64(len(res.CleanTokens))
	s.rawTokens += uint64(len(res.Tokens))
	s.steps += uint64(res.Steps)
	s.wall += wall
	s.simMS += res.SimulatedMS
	s.treeNodes += uint64(res.TreeNodes)
	s.treeBudget += uint64(res.TreeBudget)
	s.grammarPruned += uint64(res.GrammarPruned)
	s.grammarDraftTokens += uint64(res.GrammarDraftTokens)
	ss := s.strategy(label)
	for _, n := range res.AcceptedPerStep {
		if n < 1 {
			n = 1
		}
		if n > AcceptDepthBuckets {
			n = AcceptDepthBuckets
		}
		s.acceptHist[n-1]++
		ss.acceptHist[n-1]++
	}
	ss.completed++
	ss.steps += uint64(res.Steps)
	ss.rawTokens += uint64(len(res.Tokens))
	ss.cleanTokens += uint64(len(res.CleanTokens))
	ss.simMS += res.SimulatedMS
	ss.treeNodes += uint64(res.TreeNodes)
	ss.treeBudget += uint64(res.TreeBudget)
	ss.grammarPruned += uint64(res.GrammarPruned)
	ss.grammarDraftTokens += uint64(res.GrammarDraftTokens)
}

// StrategyMetrics is the per-decoding-strategy slice of a metrics
// snapshot, keyed by the strategy's display name ("NTP", "Medusa",
// "Ours", "PromptLookup").
type StrategyMetrics struct {
	// Requests counts submissions (including cache and dedup hits).
	Requests uint64 `json:"requests"`
	// Completed counts finished decodes (cache/dedup hits excluded).
	Completed uint64 `json:"completed"`
	// CacheHits counts LRU short-circuits.
	CacheHits uint64 `json:"cache_hits"`
	// DedupHits counts single-flight shares (no decode ran).
	DedupHits uint64 `json:"dedup_hits"`
	// MeanAccepted is tokens emitted per decoding step — the paper's
	// mean accepted length, the quantity speculative decoding raises.
	MeanAccepted float64 `json:"mean_accepted"`
	// TokensPerSecSim is clean tokens over simulated GPU time (the
	// paper's eq. 3 speed for everything this engine decoded).
	TokensPerSecSim float64 `json:"tokens_per_sec_sim"`
	// TreeNodes/TreeBudget total draft-tree nodes proposed and the
	// node budget available to this strategy's decodes (zero for
	// linear strategies); TreeBudgetUtilization is their ratio.
	TreeNodes             uint64  `json:"tree_nodes"`
	TreeBudget            uint64  `json:"tree_budget"`
	TreeBudgetUtilization float64 `json:"tree_budget_utilization"`
	// GrammarPrunedNodes/GrammarDraftTokens total the draft nodes the
	// syntax oracle withheld from this strategy's trees and the nodes
	// its construct synthesis contributed (zero for non-grammar
	// strategies).
	GrammarPrunedNodes uint64 `json:"grammar_pruned_nodes"`
	GrammarDraftTokens uint64 `json:"grammar_draft_tokens"`
	// AcceptDepthHist buckets this strategy's decoding steps by
	// accepted length (entry i = steps emitting i+1 tokens, last entry
	// open-ended) — the per-strategy view the adaptive controller
	// sizes budgets from.
	AcceptDepthHist []uint64 `json:"accept_depth_hist"`
}

// Metrics is a point-in-time snapshot of engine counters.
type Metrics struct {
	Requests  uint64 `json:"requests"`
	Completed uint64 `json:"completed"`
	Canceled  uint64 `json:"canceled"`
	Failed    uint64 `json:"failed"`
	// Rejected counts TryGenerate backpressure rejections (HTTP 503s).
	Rejected uint64 `json:"rejected"`
	// Shed counts admission-control drops (Config.Admit refusals —
	// HTTP 429s in fleet mode).
	Shed uint64 `json:"shed"`

	// QueueWaitSeconds is the summed queue-wait time (enqueue to worker
	// pickup) of every dequeued task; QueueWaitMaxSeconds is the worst
	// single wait observed. Together with Completed they expose how
	// long requests sit behind the worker pool under load.
	QueueWaitSeconds    float64 `json:"queue_wait_s"`
	QueueWaitMaxSeconds float64 `json:"queue_wait_max_s"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CacheHitRate is hits/(hits+misses), 0 when the cache is idle.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheEntries is the current LRU population.
	CacheEntries int `json:"cache_entries"`

	// DedupHits counts single-flight shares: concurrent identical
	// submissions that rode along on one decode.
	DedupHits uint64 `json:"dedup_hits"`
	// Inflight is the current single-flight table population.
	Inflight int `json:"inflight"`

	// PrefixCacheHits counts exact whole-prompt session reuses;
	// PrefixCachePartialHits counts partial reuses (a cached strict
	// token prefix was forked over the uncached suffix — trie mode
	// only); PrefixCacheMisses counts from-scratch session builds.
	// PrefixCacheTokensSaved totals the prompt tokens whose session
	// preparation reuse skipped, and PrefixCacheHitRate is
	// (hits+partial)/lookups. PrefixCacheEntries is the population.
	PrefixCacheHits        uint64  `json:"prefix_cache_hits"`
	PrefixCachePartialHits uint64  `json:"prefix_partial_hits"`
	PrefixCacheMisses      uint64  `json:"prefix_cache_misses"`
	PrefixCacheTokensSaved uint64  `json:"prefix_tokens_saved"`
	PrefixCacheHitRate     float64 `json:"prefix_cache_hit_rate"`
	PrefixCacheEntries     int     `json:"prefix_cache_entries"`

	Batches uint64 `json:"batches"`
	// MeanBatchSize is tasks per dispatched micro-batch (zero under
	// the continuous scheduler, which has no micro-batches).
	MeanBatchSize float64 `json:"mean_batch_size"`
	QueueDepth    int     `json:"queue_depth"`
	Workers       int     `json:"workers"`

	// Scheduler names the dispatch architecture ("continuous",
	// "microbatch"); SchedMaxBatch is the continuous batch's slot
	// count. SchedRunning/SchedParked are the scheduler's current
	// batch membership and parked-decode count; SchedOccupancy is
	// running/MaxBatch. Sweeps counts verification sweeps and
	// MeanSweepOccupancy the tasks each stepped — the utilization the
	// continuous batcher exists to raise. Preemptions counts decodes
	// parked mid-flight to make room (their session pages stay pinned
	// on the trie); Resumes counts their returns to the batch. All
	// zero under SchedMicroBatch except Scheduler itself.
	Scheduler          string  `json:"scheduler"`
	SchedMaxBatch      int     `json:"sched_max_batch"`
	SchedRunning       int     `json:"sched_running"`
	SchedParked        int     `json:"sched_parked"`
	SchedOccupancy     float64 `json:"sched_occupancy"`
	Sweeps             uint64  `json:"sched_sweeps"`
	MeanSweepOccupancy float64 `json:"sched_mean_sweep_occupancy"`
	Preemptions        uint64  `json:"sched_preemptions"`
	Resumes            uint64  `json:"sched_resumes"`

	// PrefixCachePinnedPages/Bytes are the session pages currently
	// held resident by in-flight and parked decode leases;
	// PrefixCacheLeases counts lifetime lease acquisitions (trie
	// prefix-cache mode only).
	PrefixCachePinnedPages int    `json:"prefix_pinned_pages"`
	PrefixCachePinnedBytes int64  `json:"prefix_pinned_bytes"`
	PrefixCacheLeases      uint64 `json:"prefix_leases"`

	CleanTokens uint64 `json:"clean_tokens"`
	Steps       uint64 `json:"steps"`
	// MeanAccepted is raw tokens per decoding step across all decodes.
	MeanAccepted float64 `json:"mean_accepted"`
	// AcceptDepthHist buckets decoding steps by accepted length:
	// entry i counts steps that emitted i+1 tokens, the final entry
	// everything at or past AcceptDepthBuckets. The mass above entry 0
	// is where speculative decoding pays.
	AcceptDepthHist []uint64 `json:"accept_depth_hist"`
	// TreeNodes/TreeBudget total draft-tree nodes proposed and the
	// node budget available across tree-drafting decodes;
	// TreeBudgetUtilization is their ratio (how much of the configured
	// tree the drafters actually fill).
	TreeNodes             uint64  `json:"tree_nodes_total"`
	TreeBudget            uint64  `json:"tree_budget_total"`
	TreeBudgetUtilization float64 `json:"tree_budget_utilization"`
	// GrammarPrunedNodes/GrammarDraftTokens total the draft nodes the
	// grammar oracle withheld and the nodes construct synthesis
	// contributed across grammar-strategy decodes.
	GrammarPrunedNodes uint64 `json:"grammar_pruned_nodes"`
	GrammarDraftTokens uint64 `json:"grammar_draft_tokens"`
	// WallSeconds is summed worker decode time (busy time, not
	// wall-clock span: with W workers it accrues up to W seconds per
	// second).
	WallSeconds float64 `json:"wall_seconds"`
	// TokensPerSecWall is clean tokens per worker-busy-second — the
	// engine's real single-worker decode throughput.
	TokensPerSecWall float64 `json:"tokens_per_sec_wall"`
	// TokensPerSecSim is clean tokens over simulated GPU seconds.
	TokensPerSecSim float64 `json:"tokens_per_sec_sim"`

	// Adapt names the speculation controller's mode ("off", "shadow",
	// "on"); the remaining Adapt* fields mirror the controller's own
	// snapshot. AdaptLevel is the load-degradation rung (0 tree, 1
	// linear, 2 nodraft) and AdaptLevelName its spelling; the smoothed
	// signals it runs on are AdaptOccupancy / AdaptQueueFrac /
	// AdaptQueueWaitMS. AdaptDecisions counts Decide calls (shadow
	// included), AdaptReroutes strategy substitutions, AdaptBudget-
	// Resizes sized tree budgets, AdaptDowngrades decisions made above
	// the tree rung, AdaptExplorations deterministic exploration slots,
	// AdaptLevelChanges rung moves, and AdaptShadowed decisions that
	// shadow mode recorded without applying. All zero when Adapt is
	// "off".
	Adapt              string  `json:"adapt"`
	AdaptLevel         int     `json:"adapt_level"`
	AdaptLevelName     string  `json:"adapt_level_name,omitempty"`
	AdaptOccupancy     float64 `json:"adapt_occupancy"`
	AdaptQueueFrac     float64 `json:"adapt_queue_frac"`
	AdaptQueueWaitMS   float64 `json:"adapt_queue_wait_ms"`
	AdaptDecisions     uint64  `json:"adapt_decisions"`
	AdaptReroutes      uint64  `json:"adapt_reroutes"`
	AdaptBudgetResizes uint64  `json:"adapt_budget_resizes"`
	AdaptDowngrades    uint64  `json:"adapt_downgrades"`
	AdaptExplorations  uint64  `json:"adapt_explorations"`
	AdaptLevelChanges  uint64  `json:"adapt_level_changes"`
	AdaptShadowed      uint64  `json:"adapt_shadowed"`

	// PerStrategy groups counters by decoding strategy. PerMode is the
	// same map under the legacy key for pre-strategy consumers.
	PerStrategy map[string]StrategyMetrics `json:"per_strategy"`
	PerMode     map[string]StrategyMetrics `json:"per_mode"`
}

// Metrics snapshots the engine's counters.
func (e *Engine) Metrics() Metrics {
	e.st.mu.Lock()
	defer e.st.mu.Unlock()
	m := Metrics{
		Requests:            e.st.requests,
		Completed:           e.st.completed,
		Canceled:            e.st.canceled,
		Failed:              e.st.failed,
		Rejected:            e.st.rejected,
		Shed:                e.st.shedded,
		QueueWaitSeconds:    e.st.queueWaitSum.Seconds(),
		QueueWaitMaxSeconds: e.st.queueWaitMax.Seconds(),
		CacheHits:           e.st.cacheHits,
		CacheMisses:         e.st.cacheMisses,
		DedupHits:           e.st.dedupHits,
		Batches:             e.st.batches,
		QueueDepth:          len(e.queue),
		Workers:             e.cfg.Workers,
		Scheduler:           e.cfg.Scheduler,
		SchedMaxBatch:       e.cfg.MaxBatch,
		SchedRunning:        e.st.running,
		SchedParked:         e.st.parked,
		Sweeps:              e.st.sweeps,
		Preemptions:         e.st.preemptions,
		Resumes:             e.st.resumes,
		CleanTokens:         e.st.cleanTokens,
		Steps:               e.st.steps,
		WallSeconds:         e.st.wall.Seconds(),
		AcceptDepthHist:     append([]uint64(nil), e.st.acceptHist[:]...),
		TreeNodes:           e.st.treeNodes,
		TreeBudget:          e.st.treeBudget,
		GrammarPrunedNodes:  e.st.grammarPruned,
		GrammarDraftTokens:  e.st.grammarDraftTokens,
		PerStrategy:         map[string]StrategyMetrics{},
	}
	if m.TreeBudget > 0 {
		m.TreeBudgetUtilization = float64(m.TreeNodes) / float64(m.TreeBudget)
	}
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(lookups)
	}
	if e.cache != nil {
		m.CacheEntries = e.cache.len()
	}
	e.flightMu.Lock()
	m.Inflight = len(e.inflight)
	e.flightMu.Unlock()
	if e.genCache != nil {
		st := e.genCache.SessionStats()
		m.PrefixCacheHits = st.Hits
		m.PrefixCachePartialHits = st.PartialHits
		m.PrefixCacheMisses = st.Misses
		m.PrefixCacheTokensSaved = st.TokensSaved
		m.PrefixCacheHitRate = st.HitRate()
		m.PrefixCacheEntries = st.Entries
		m.PrefixCachePinnedPages = st.PinnedPages
		m.PrefixCachePinnedBytes = st.PinnedBytes
		m.PrefixCacheLeases = st.Leases
	}
	if m.SchedMaxBatch > 0 {
		m.SchedOccupancy = float64(m.SchedRunning) / float64(m.SchedMaxBatch)
	}
	if m.Sweeps > 0 {
		m.MeanSweepOccupancy = float64(e.st.sweptTasks) / float64(m.Sweeps)
	}
	if m.Batches > 0 {
		m.MeanBatchSize = float64(e.st.batchedTasks) / float64(m.Batches)
	}
	if m.Steps > 0 {
		m.MeanAccepted = float64(e.st.rawTokens) / float64(m.Steps)
	}
	if m.WallSeconds > 0 {
		m.TokensPerSecWall = float64(m.CleanTokens) / m.WallSeconds
	}
	if e.st.simMS > 0 {
		m.TokensPerSecSim = float64(m.CleanTokens) / (e.st.simMS / 1000)
	}
	m.Adapt = e.adaptMode
	if m.Adapt == "" {
		m.Adapt = AdaptOff
	}
	m.AdaptShadowed = e.st.adaptShadowed
	if e.ctrl != nil {
		snap := e.ctrl.Snapshot()
		m.AdaptLevel = int(snap.Level)
		m.AdaptLevelName = snap.LevelName
		m.AdaptOccupancy = snap.Occupancy
		m.AdaptQueueFrac = snap.QueueFrac
		m.AdaptQueueWaitMS = snap.QueueWaitMS
		m.AdaptDecisions = snap.Decisions
		m.AdaptReroutes = snap.Reroutes
		m.AdaptBudgetResizes = snap.BudgetResizes
		m.AdaptDowngrades = snap.Downgrades
		m.AdaptExplorations = snap.Explorations
		m.AdaptLevelChanges = snap.LevelChanges
	}
	for name, ss := range e.st.perStrategy {
		sm := StrategyMetrics{
			Requests:           ss.requests,
			Completed:          ss.completed,
			CacheHits:          ss.cacheHits,
			DedupHits:          ss.dedupHits,
			TreeNodes:          ss.treeNodes,
			TreeBudget:         ss.treeBudget,
			GrammarPrunedNodes: ss.grammarPruned,
			GrammarDraftTokens: ss.grammarDraftTokens,
			AcceptDepthHist:    append([]uint64(nil), ss.acceptHist[:]...),
		}
		if ss.steps > 0 {
			sm.MeanAccepted = float64(ss.rawTokens) / float64(ss.steps)
		}
		if ss.simMS > 0 {
			sm.TokensPerSecSim = float64(ss.cleanTokens) / (ss.simMS / 1000)
		}
		if ss.treeBudget > 0 {
			sm.TreeBudgetUtilization = float64(ss.treeNodes) / float64(ss.treeBudget)
		}
		m.PerStrategy[name] = sm
	}
	m.PerMode = m.PerStrategy
	return m
}

// Healthz implements Backend: liveness plus model/pool identity (the
// uptime key is added by the handler).
func (e *Engine) Healthz() map[string]any {
	return map[string]any{
		"status":      "ok",
		"model":       e.m.Config().Name,
		"scheme":      e.m.Scheme().String(),
		"scheduler":   e.cfg.Scheduler,
		"workers":     e.Workers(),
		"queue_depth": e.QueueDepth(),
	}
}

// MetricsBody implements Backend: the JSON /metrics body (sans uptime).
func (e *Engine) MetricsBody() map[string]any {
	return map[string]any{"model": e.m.Config().Name, "engine": e.Metrics()}
}

// WritePrometheusTo implements Backend: the text exposition format.
func (e *Engine) WritePrometheusTo(w io.Writer, uptimeS float64) {
	writePrometheus(w, e.Metrics(), uptimeS, e.m.Config().Name)
}

// WriteEnginePrometheus renders any engine-shaped metrics snapshot in
// the Prometheus text exposition format — the cluster layer reuses it
// for its fleet-wide aggregate before appending fleet-only families.
func WriteEnginePrometheus(w io.Writer, m Metrics, uptimeS float64, modelName string) {
	writePrometheus(w, m, uptimeS, modelName)
}
