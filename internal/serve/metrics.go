package serve

import (
	"sync"
	"time"

	"repro/internal/core"
)

// stats accumulates engine counters under one mutex; contention is
// negligible next to a decode.
type stats struct {
	mu        sync.Mutex
	requests  uint64
	completed uint64
	canceled  uint64
	failed    uint64
	rejected  uint64

	cacheHits   uint64
	cacheMisses uint64

	batches      uint64
	batchedTasks uint64

	cleanTokens uint64
	rawTokens   uint64
	steps       uint64
	wall        time.Duration
	simMS       float64

	perMode map[string]*modeStats
}

type modeStats struct {
	requests    uint64
	completed   uint64
	cacheHits   uint64
	steps       uint64
	rawTokens   uint64
	cleanTokens uint64
	simMS       float64
}

func (s *stats) mode(m core.Mode) *modeStats {
	ms := s.perMode[m.String()]
	if ms == nil {
		ms = &modeStats{}
		s.perMode[m.String()] = ms
	}
	return ms
}

func (s *stats) request(m core.Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.mode(m).requests++
}

func (s *stats) cacheHit(m core.Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheHits++
	s.mode(m).cacheHits++
}

func (s *stats) cacheMiss() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheMisses++
}

func (s *stats) reject() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rejected++
}

func (s *stats) cancel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.canceled++
}

func (s *stats) fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failed++
}

func (s *stats) batch(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.batchedTasks += uint64(n)
}

func (s *stats) complete(m core.Mode, res *core.Result, wall time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.completed++
	s.cleanTokens += uint64(len(res.CleanTokens))
	s.rawTokens += uint64(len(res.Tokens))
	s.steps += uint64(res.Steps)
	s.wall += wall
	s.simMS += res.SimulatedMS
	ms := s.mode(m)
	ms.completed++
	ms.steps += uint64(res.Steps)
	ms.rawTokens += uint64(len(res.Tokens))
	ms.cleanTokens += uint64(len(res.CleanTokens))
	ms.simMS += res.SimulatedMS
}

// ModeMetrics is the per-decoding-mode slice of a metrics snapshot.
type ModeMetrics struct {
	// Requests counts submissions (including cache hits).
	Requests uint64 `json:"requests"`
	// Completed counts finished decodes (cache hits excluded).
	Completed uint64 `json:"completed"`
	// CacheHits counts LRU short-circuits.
	CacheHits uint64 `json:"cache_hits"`
	// MeanAccepted is tokens emitted per decoding step — the paper's
	// mean accepted length, the quantity speculative decoding raises.
	MeanAccepted float64 `json:"mean_accepted"`
	// TokensPerSecSim is clean tokens over simulated GPU time (the
	// paper's eq. 3 speed for everything this engine decoded).
	TokensPerSecSim float64 `json:"tokens_per_sec_sim"`
}

// Metrics is a point-in-time snapshot of engine counters.
type Metrics struct {
	Requests  uint64 `json:"requests"`
	Completed uint64 `json:"completed"`
	Canceled  uint64 `json:"canceled"`
	Failed    uint64 `json:"failed"`
	// Rejected counts TryGenerate backpressure rejections (HTTP 503s).
	Rejected uint64 `json:"rejected"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// CacheHitRate is hits/(hits+misses), 0 when the cache is idle.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheEntries is the current LRU population.
	CacheEntries int `json:"cache_entries"`

	Batches uint64 `json:"batches"`
	// MeanBatchSize is tasks per dispatched micro-batch.
	MeanBatchSize float64 `json:"mean_batch_size"`
	QueueDepth    int     `json:"queue_depth"`
	Workers       int     `json:"workers"`

	CleanTokens uint64 `json:"clean_tokens"`
	Steps       uint64 `json:"steps"`
	// MeanAccepted is raw tokens per decoding step across all decodes.
	MeanAccepted float64 `json:"mean_accepted"`
	// WallSeconds is summed worker decode time (busy time, not
	// wall-clock span: with W workers it accrues up to W seconds per
	// second).
	WallSeconds float64 `json:"wall_seconds"`
	// TokensPerSecWall is clean tokens per worker-busy-second — the
	// engine's real single-worker decode throughput.
	TokensPerSecWall float64 `json:"tokens_per_sec_wall"`
	// TokensPerSecSim is clean tokens over simulated GPU seconds.
	TokensPerSecSim float64 `json:"tokens_per_sec_sim"`

	PerMode map[string]ModeMetrics `json:"per_mode"`
}

// Metrics snapshots the engine's counters.
func (e *Engine) Metrics() Metrics {
	e.st.mu.Lock()
	defer e.st.mu.Unlock()
	m := Metrics{
		Requests:    e.st.requests,
		Completed:   e.st.completed,
		Canceled:    e.st.canceled,
		Failed:      e.st.failed,
		Rejected:    e.st.rejected,
		CacheHits:   e.st.cacheHits,
		CacheMisses: e.st.cacheMisses,
		Batches:     e.st.batches,
		QueueDepth:  len(e.queue),
		Workers:     e.cfg.Workers,
		CleanTokens: e.st.cleanTokens,
		Steps:       e.st.steps,
		WallSeconds: e.st.wall.Seconds(),
		PerMode:     map[string]ModeMetrics{},
	}
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(lookups)
	}
	if e.cache != nil {
		m.CacheEntries = e.cache.len()
	}
	if m.Batches > 0 {
		m.MeanBatchSize = float64(e.st.batchedTasks) / float64(m.Batches)
	}
	if m.Steps > 0 {
		m.MeanAccepted = float64(e.st.rawTokens) / float64(m.Steps)
	}
	if m.WallSeconds > 0 {
		m.TokensPerSecWall = float64(m.CleanTokens) / m.WallSeconds
	}
	if e.st.simMS > 0 {
		m.TokensPerSecSim = float64(m.CleanTokens) / (e.st.simMS / 1000)
	}
	for name, ms := range e.st.perMode {
		mm := ModeMetrics{
			Requests:  ms.requests,
			Completed: ms.completed,
			CacheHits: ms.cacheHits,
		}
		if ms.steps > 0 {
			mm.MeanAccepted = float64(ms.rawTokens) / float64(ms.steps)
		}
		if ms.simMS > 0 {
			mm.TokensPerSecSim = float64(ms.cleanTokens) / (ms.simMS / 1000)
		}
		m.PerMode[name] = mm
	}
	return m
}
