package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// writePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE pair per family,
// per-strategy families labelled {strategy="..."}. Counter families
// carry the _total suffix; point-in-time values are gauges.
func writePrometheus(w io.Writer, m Metrics, uptimeS float64, modelName string) {
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP vgend_%s %s\n# TYPE vgend_%s counter\nvgend_%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP vgend_%s %s\n# TYPE vgend_%s gauge\nvgend_%s %g\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP vgend_info Build/model identity (value is always 1).\n# TYPE vgend_info gauge\nvgend_info{model=%q} 1\n", modelName)
	g("uptime_seconds", "Seconds since the server started.", uptimeS)

	c("requests_total", "Generation submissions, including cache and dedup hits.", m.Requests)
	c("completed_total", "Finished decodes (cache/dedup hits excluded).", m.Completed)
	c("canceled_total", "Decodes ended by context cancellation.", m.Canceled)
	c("failed_total", "Decodes ended by non-context errors.", m.Failed)
	c("rejected_total", "Backpressure rejections (queue full).", m.Rejected)
	c("shed_total", "Admission-control drops (load-shedding policies).", m.Shed)
	// Monotonic float accumulation: a counter, despite not being integral.
	fmt.Fprintf(w, "# HELP vgend_queue_wait_seconds_total Summed queue-wait time (enqueue to worker pickup) in seconds.\n# TYPE vgend_queue_wait_seconds_total counter\nvgend_queue_wait_seconds_total %g\n", m.QueueWaitSeconds)
	g("queue_wait_max_seconds", "Worst single queue wait observed.", m.QueueWaitMaxSeconds)

	c("cache_hits_total", "Result LRU hits.", m.CacheHits)
	c("cache_misses_total", "Result LRU misses.", m.CacheMisses)
	g("cache_entries", "Current result LRU population.", float64(m.CacheEntries))

	c("dedup_hits_total", "Single-flight shares of identical in-flight requests.", m.DedupHits)
	g("inflight", "Current single-flight table population.", float64(m.Inflight))

	c("prefix_cache_hits_total", "Exact whole-prompt session reuses.", m.PrefixCacheHits)
	c("prefix_partial_hits_total", "Partial session reuses (cached token prefix forked over the suffix).", m.PrefixCachePartialHits)
	c("prefix_cache_misses_total", "Prompt-session builds.", m.PrefixCacheMisses)
	c("prefix_tokens_saved_total", "Prompt tokens whose session preparation was skipped by reuse.", m.PrefixCacheTokensSaved)
	g("prefix_cache_hit_rate", "Fraction of session lookups reusing any prefix (exact or partial).", m.PrefixCacheHitRate)
	g("prefix_cache_entries", "Current prompt-session cache population.", float64(m.PrefixCacheEntries))

	c("batches_total", "Dispatched micro-batches.", m.Batches)
	g("mean_batch_size", "Tasks per dispatched micro-batch.", m.MeanBatchSize)
	g("queue_depth", "Requests waiting in the queue.", float64(m.QueueDepth))
	g("workers", "Decoder worker pool size.", float64(m.Workers))

	fmt.Fprintf(w, "# HELP vgend_sched_info Dispatch architecture (value is always 1).\n# TYPE vgend_sched_info gauge\nvgend_sched_info{scheduler=%q} 1\n", m.Scheduler)
	g("sched_max_batch", "Continuous-scheduler batch slots.", float64(m.SchedMaxBatch))
	g("sched_running", "Decodes currently in the running batch.", float64(m.SchedRunning))
	g("sched_parked", "Preempted decodes parked awaiting a slot.", float64(m.SchedParked))
	g("sched_occupancy", "Running decodes over batch slots.", m.SchedOccupancy)
	c("sched_sweeps_total", "Verification sweeps over the running batch.", m.Sweeps)
	g("sched_mean_sweep_occupancy", "Decodes stepped per verification sweep.", m.MeanSweepOccupancy)
	c("sched_preemptions_total", "Decodes preempted (parked with pages pinned).", m.Preemptions)
	c("sched_resumes_total", "Parked decodes resumed into the batch.", m.Resumes)
	g("prefix_pinned_pages", "Session pages pinned by in-flight/parked decode leases.", float64(m.PrefixCachePinnedPages))
	g("prefix_pinned_bytes", "Estimated bytes held resident by page leases.", float64(m.PrefixCachePinnedBytes))
	c("prefix_leases_total", "Session page leases acquired.", m.PrefixCacheLeases)

	c("clean_tokens_total", "Clean tokens generated.", m.CleanTokens)
	c("steps_total", "Decoding steps (forward passes).", m.Steps)
	g("mean_accepted", "Raw tokens emitted per decoding step.", m.MeanAccepted)
	if len(m.AcceptDepthHist) > 0 {
		fmt.Fprintf(w, "# HELP vgend_accept_depth_total Decoding steps by accepted length (tokens emitted per step; last bucket open-ended).\n# TYPE vgend_accept_depth_total counter\n")
		for i, v := range m.AcceptDepthHist {
			label := fmt.Sprintf("%d", i+1)
			if i == len(m.AcceptDepthHist)-1 {
				label += "+"
			}
			fmt.Fprintf(w, "vgend_accept_depth_total{depth=%q} %d\n", label, v)
		}
	}
	c("tree_nodes_total", "Draft-tree nodes proposed across tree-drafting decodes.", m.TreeNodes)
	c("tree_budget_total", "Draft-tree node budget available across tree-drafting decodes.", m.TreeBudget)
	g("tree_budget_utilization", "Fraction of the draft-tree node budget actually proposed.", m.TreeBudgetUtilization)
	c("grammar_pruned_nodes_total", "Draft nodes withheld by the grammar syntax oracle.", m.GrammarPrunedNodes)
	c("grammar_draft_tokens_total", "Draft nodes contributed by synthesized grammar constructs.", m.GrammarDraftTokens)
	// Monotonic float accumulation: a counter, despite not being integral.
	fmt.Fprintf(w, "# HELP vgend_wall_seconds_total Summed worker decode time in seconds.\n# TYPE vgend_wall_seconds_total counter\nvgend_wall_seconds_total %g\n", m.WallSeconds)
	g("tokens_per_sec_wall", "Clean tokens per worker-busy-second.", m.TokensPerSecWall)
	g("tokens_per_sec_sim", "Clean tokens per simulated GPU second (paper eq. 3).", m.TokensPerSecSim)

	// Adaptive speculation controller families. The info/level gauges
	// are always rendered (mode "off" with zeros when disabled) so
	// dashboards can tell "controller off" from "metric missing".
	fmt.Fprintf(w, "# HELP vgend_adapt_info Speculation-controller mode (value is always 1).\n# TYPE vgend_adapt_info gauge\nvgend_adapt_info{mode=%q} 1\n", m.Adapt)
	g("adapt_level", "Load-degradation rung (0 tree, 1 linear, 2 nodraft).", float64(m.AdaptLevel))
	g("adapt_occupancy", "Controller's smoothed batch occupancy.", m.AdaptOccupancy)
	g("adapt_queue_frac", "Controller's smoothed queue pressure.", m.AdaptQueueFrac)
	g("adapt_queue_wait_ms", "Controller's smoothed queue wait (ms).", m.AdaptQueueWaitMS)
	c("adapt_decisions_total", "Controller decisions (shadow mode included).", m.AdaptDecisions)
	c("adapt_reroutes_total", "Strategy substitutions decided.", m.AdaptReroutes)
	c("adapt_budget_resizes_total", "Draft-tree budgets sized from the accept-depth EWMA.", m.AdaptBudgetResizes)
	c("adapt_downgrades_total", "Decisions made above the tree rung (load-degraded).", m.AdaptDowngrades)
	c("adapt_explorations_total", "Deterministic exploration slots routed.", m.AdaptExplorations)
	c("adapt_level_changes_total", "Load-degradation rung moves.", m.AdaptLevelChanges)
	c("adapt_shadowed_total", "Decisions recorded but not applied (shadow mode).", m.AdaptShadowed)

	// Per-strategy families, strategies sorted for stable scrapes.
	names := make([]string, 0, len(m.PerStrategy))
	for name := range m.PerStrategy {
		names = append(names, name)
	}
	sort.Strings(names)
	sc := func(name, help string, pick func(StrategyMetrics) uint64) {
		fmt.Fprintf(w, "# HELP vgend_%s %s\n# TYPE vgend_%s counter\n", name, help, name)
		for _, s := range names {
			fmt.Fprintf(w, "vgend_%s{strategy=%q} %d\n", name, s, pick(m.PerStrategy[s]))
		}
	}
	sg := func(name, help string, pick func(StrategyMetrics) float64) {
		fmt.Fprintf(w, "# HELP vgend_%s %s\n# TYPE vgend_%s gauge\n", name, help, name)
		for _, s := range names {
			fmt.Fprintf(w, "vgend_%s{strategy=%q} %g\n", name, s, pick(m.PerStrategy[s]))
		}
	}
	if len(names) > 0 {
		sc("strategy_requests_total", "Submissions per decoding strategy.", func(s StrategyMetrics) uint64 { return s.Requests })
		sc("strategy_completed_total", "Finished decodes per strategy.", func(s StrategyMetrics) uint64 { return s.Completed })
		sc("strategy_cache_hits_total", "Result LRU hits per strategy.", func(s StrategyMetrics) uint64 { return s.CacheHits })
		sc("strategy_dedup_hits_total", "Single-flight shares per strategy.", func(s StrategyMetrics) uint64 { return s.DedupHits })
		sg("strategy_mean_accepted", "Tokens per decoding step per strategy.", func(s StrategyMetrics) float64 { return s.MeanAccepted })
		sg("strategy_tokens_per_sec_sim", "Simulated tokens/s per strategy.", func(s StrategyMetrics) float64 { return s.TokensPerSecSim })
		sc("strategy_tree_nodes_total", "Draft-tree nodes proposed per strategy.", func(s StrategyMetrics) uint64 { return s.TreeNodes })
		sg("strategy_tree_budget_utilization", "Draft-tree node-budget utilization per strategy.", func(s StrategyMetrics) float64 { return s.TreeBudgetUtilization })
		sc("strategy_grammar_pruned_nodes_total", "Draft nodes withheld by the grammar oracle per strategy.", func(s StrategyMetrics) uint64 { return s.GrammarPrunedNodes })
		sc("strategy_grammar_draft_tokens_total", "Construct-chain draft nodes per strategy.", func(s StrategyMetrics) uint64 { return s.GrammarDraftTokens })
		// The per-strategy accept-depth histogram: the distribution the
		// adaptive controller sizes each strategy's tree budget from,
		// exported so Prometheus sees exactly what the controller sees.
		fmt.Fprintf(w, "# HELP vgend_strategy_accept_depth_total Decoding steps by accepted length per strategy (last bucket open-ended).\n# TYPE vgend_strategy_accept_depth_total counter\n")
		for _, s := range names {
			hist := m.PerStrategy[s].AcceptDepthHist
			for i, v := range hist {
				label := fmt.Sprintf("%d", i+1)
				if i == len(hist)-1 {
					label += "+"
				}
				fmt.Fprintf(w, "vgend_strategy_accept_depth_total{strategy=%q,depth=%q} %d\n", s, label, v)
			}
		}
	}
}

// wantsPrometheus reports whether the request asked for the text
// exposition format: ?format=prometheus, or an Accept header that
// looks like a Prometheus scraper's (OpenMetrics, or text/plain when
// the client did not also ask for JSON — axios-style defaults of
// "application/json, text/plain, */*" keep the JSON shape). The JSON
// shape stays the default.
func wantsPrometheus(format, accept string) bool {
	if format == "prometheus" {
		return true
	}
	if format != "" {
		return false
	}
	accept = strings.ToLower(accept)
	if strings.Contains(accept, "openmetrics") {
		return true
	}
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}
