package model

import (
	"math"
	"strings"

	"repro/internal/frag"
	"repro/internal/tokenizer"
)

// Scheme selects the training strategy compared in the paper.
type Scheme int

// Training schemes (paper §IV-A).
const (
	// SchemeNTP is conventional next-token-prediction fine-tuning:
	// base model only, no decoding heads.
	SchemeNTP Scheme = iota
	// SchemeMedusa is the original Medusa-2 method: joint fine-tuning
	// of base and heads on plain shifted labels.
	SchemeMedusa
	// SchemeOurs is the paper's method: joint fine-tuning on
	// [FRAG]-enriched sequences with [IGNORE]-masked labels.
	SchemeOurs
	// SchemeOursNoMask is an ablation: [FRAG]-enriched sequences but
	// vanilla (unmasked) Medusa labels. It isolates the contribution
	// of the [IGNORE] masking to head quality and backbone cleanliness.
	SchemeOursNoMask
)

// String names the scheme as in the paper's tables.
func (s Scheme) String() string {
	switch s {
	case SchemeNTP:
		return "NTP"
	case SchemeMedusa:
		return "Medusa"
	case SchemeOurs:
		return "Ours"
	case SchemeOursNoMask:
		return "Ours-nomask"
	}
	return "?"
}

// UsesFrags reports whether the scheme trains on [FRAG]-enriched code.
func (s Scheme) UsesFrags() bool { return s == SchemeOurs || s == SchemeOursNoMask }

// Config describes a simulated backbone model. The two presets mirror
// the paper's CodeLlama-7b and CodeT5p-220m in relative capacity and
// per-step cost.
type Config struct {
	// Name appears in reports ("CodeLlama-sim", "CodeT5p-sim").
	Name string
	// Order is the base model's maximum context length in tokens
	// (n-gram order minus one).
	Order int
	// HeadCtx is the context length available to decoding heads
	// (heads are small MLPs in Medusa; shorter context models that).
	HeadCtx int
	// NumHeads is the number of decoding heads appended (paper: 10).
	NumHeads int
	// VocabSize is the BPE vocabulary target for this model.
	VocabSize int
	// Lambda is the effective average of the paper's sine-growth
	// joint-loss weight λ (0→0.2 ⇒ mean ≈ 0.2·2/π ≈ 0.127).
	Lambda float64
	// Gamma is the per-head loss decay γ (paper: 0.8).
	Gamma float64
	// CopyStrength scales the induction-copy mechanism (how strongly
	// the model echoes identifiers from its prompt/context).
	CopyStrength float64
	// PromptBlend is the exponent of the keyword-conditioned expert in
	// the product-of-experts combination with the base table — the
	// model's prompt-attention analogue (0 disables, 1 full strength).
	// The base table contributes positional structure, the keyword
	// expert contributes task identity; multiplying them keeps both.
	PromptBlend float64
	// PromptCopyBoost multiplies the probability of content tokens that
	// appear in the prompt (identifier copying — fine-tuned LLMs
	// strongly prefer echoing the names their prompt spelled out).
	PromptCopyBoost float64
	// KwCtx is the context length of the keyword-conditioned tables.
	KwCtx int
	// StepLatencyMS is the simulated cost of one forward pass of the
	// backbone — the GPU cost model. Calibrated so the NTP baseline
	// reproduces the paper's tokens/s (83.13 for CodeLlama ⇒ 12.03 ms).
	StepLatencyMS float64
	// HeadLatencyMS is the additional per-head cost of a forward pass.
	HeadLatencyMS float64
	// MaxTokens bounds generation length (8192 / 2048 in the paper).
	MaxTokens int
}

// CodeLlamaSim mirrors CodeLlama-7b-Instruct: larger context, larger
// vocabulary, higher per-step cost.
func CodeLlamaSim() Config {
	return Config{
		Name: "CodeLlama-sim", Order: 12, HeadCtx: 3, NumHeads: 10,
		VocabSize: 2048, Lambda: 0.127, Gamma: 0.8, CopyStrength: 0.55,
		PromptBlend: 0.6, KwCtx: 2, PromptCopyBoost: 4.0,
		StepLatencyMS: 12.03, HeadLatencyMS: 0.07, MaxTokens: 2000,
	}
}

// CodeT5pSim mirrors CodeT5p-220m-bimodal: shorter context, smaller
// vocabulary, lower per-step cost, weaker heads.
func CodeT5pSim() Config {
	return Config{
		Name: "CodeT5p-sim", Order: 4, HeadCtx: 2, NumHeads: 10,
		VocabSize: 1024, Lambda: 0.127, Gamma: 0.8, CopyStrength: 0.35,
		PromptBlend: 0.4, KwCtx: 2, PromptCopyBoost: 2.2,
		StepLatencyMS: 10.91, HeadLatencyMS: 0.06, MaxTokens: 1200,
	}
}

// Example is one Alpaca-style training sample: a natural-language
// description and its Verilog implementation.
type Example struct {
	Prompt string
	Code   string
}

// FormatPrompt renders the instruction wrapper shared by training and
// inference (the Alpaca style of §IV-A1).
func FormatPrompt(desc string) string {
	return "### Instruction:\n" + desc + "\n### Response:\n"
}

// Model is a trained simulated LM: a base table, per-head tables and a
// keyword-conditioned table for prompt attention.
type Model struct {
	cfg    Config
	scheme Scheme
	tok    *tokenizer.Tokenizer
	base   *ngramTable
	heads  []*ngramTable
	kw     *ngramTable // seeded by prompt-keyword hashes
	// kwDF counts, per keyword, the number of training examples whose
	// prompt contained it (document frequency for inference-time IDF
	// filtering of uninformative keywords such as clk or rst).
	kwDF map[string]int
	// trained counts examples consumed (diagnostics).
	trained int
}

// New creates an empty model bound to a tokenizer; use Train / TrainMore
// to feed it examples.
func New(tk *tokenizer.Tokenizer, cfg Config, scheme Scheme) *Model {
	if cfg.KwCtx <= 0 {
		cfg.KwCtx = 2
	}
	m := &Model{cfg: cfg, scheme: scheme, tok: tk,
		base: newNgramTable(cfg.Order), kw: newNgramTable(cfg.KwCtx),
		kwDF: map[string]int{}}
	if scheme != SchemeNTP {
		m.heads = make([]*ngramTable, cfg.NumHeads)
		for i := range m.heads {
			m.heads[i] = newNgramTable(cfg.HeadCtx)
		}
	}
	return m
}

// Train builds a model from scratch over the examples.
func Train(tk *tokenizer.Tokenizer, cfg Config, scheme Scheme, examples []Example) *Model {
	m := New(tk, cfg, scheme)
	m.TrainMore(examples)
	return m
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Scheme returns the training scheme the model was built with.
func (m *Model) Scheme() Scheme { return m.scheme }

// Tokenizer returns the model's tokenizer.
func (m *Model) Tokenizer() *tokenizer.Tokenizer { return m.tok }

// NumHeads returns the number of decoding heads (0 for NTP models).
func (m *Model) NumHeads() int { return len(m.heads) }

// TrainedExamples returns how many examples the model has consumed.
func (m *Model) TrainedExamples() int { return m.trained }

// TrainMore ingests additional examples incrementally — the data-size
// sweep of Table I trains once per subset boundary and keeps going.
func (m *Model) TrainMore(examples []Example) {
	for _, ex := range examples {
		m.trainOne(ex)
	}
}

// trainOne updates the count tables for a single example according to
// the model's scheme.
func (m *Model) trainOne(ex Example) {
	promptIDs := append([]int{tokenizer.BosID}, m.tok.Encode(FormatPrompt(ex.Prompt))...)

	var codeIDs []int
	if m.scheme.UsesFrags() {
		ids, err := frag.EncodeWithFrags(m.tok, ex.Code)
		if err != nil {
			return // unparsable example: dataset pipeline should have filtered it
		}
		codeIDs = ids
	} else {
		codeIDs = m.tok.Encode(ex.Code)
	}
	codeIDs = append(codeIDs, tokenizer.EosID)

	full := append(append([]int{}, promptIDs...), codeIDs...)
	codeStart := len(promptIDs)
	m.trained++

	// Contexts are hashed over the FRAG-FILTERED view of the sequence:
	// [FRAG] markers are positional decorations a transformer would
	// attend through, and keeping them in the window would halve the
	// enriched model's effective context reach. Markers remain
	// first-class PREDICTION TARGETS. flen[p] is the filtered length
	// of full[:p], so filtAll[:flen[p]] is the context before p.
	filtAll := make([]int, 0, len(full))
	flen := make([]int, len(full)+1)
	for p, id := range full {
		flen[p] = len(filtAll)
		if id != tokenizer.FragID {
			filtAll = append(filtAll, id)
		}
	}
	flen[len(full)] = len(filtAll)

	// Keyword-conditioned tables: the prompt's content words each
	// learn their own successor statistics, giving the model real
	// prompt conditioning (its attention analogue).
	seeds := make([]uint64, 0, maxKeywords)
	for _, w := range Keywords(ex.Prompt) {
		seeds = append(seeds, kwSeed(w))
		m.kwDF[w]++
	}

	// ctxAt builds the filtered context before position p, with the
	// trailing run of FRAG markers (capped at 2) retained: the tables
	// must distinguish "just opened/closed a fragment" states, or a
	// generated marker would not change the context and decoding could
	// loop on markers forever. Contexts are clipped to the code region
	// plus a short constant anchor ("### Response:\n") — deeper prompt
	// prose is example-specific and long context levels would latch
	// onto coincidental phrase overlaps across prompts.
	clip := flen[codeStart] - promptAnchor
	if clip < 0 {
		clip = 0
	}
	ctxBuf := make([]int, 0, len(full)+2)
	ctxAt := func(p int) []int {
		lo := clip
		ctxBuf = append(ctxBuf[:0], filtAll[lo:flen[p]]...)
		trail := 0
		for j := p - 1; j >= 0 && full[j] == tokenizer.FragID && trail < 2; j-- {
			trail++
			ctxBuf = append(ctxBuf, tokenizer.FragID)
		}
		return ctxBuf
	}

	// Targets are code-region only — the Alpaca format masks loss on
	// the instruction, so the model never learns to produce prompt
	// prose (contexts may still reach back into the prompt tail, which
	// anchors the response start).
	for p := codeStart; p < len(full); p++ {
		ctx := ctxAt(p)
		m.base.add(ctx, full[p], 1)
		// The keyword tables use the content-only view (a trailing
		// [FRAG] would collapse every fragment boundary into the same
		// two-token context) and learn content targets only — they are
		// the task-identity expert, agnostic about marker machinery.
		if full[p] != tokenizer.FragID {
			kwCtx := filtAll[clip:flen[p]]
			for _, seed := range seeds {
				m.kw.addSeeded(kwCtx, full[p], 1, seed)
			}
		}
	}
	if m.scheme == SchemeNTP {
		return
	}

	// Heads: label matrix over the code region (paper Fig. 4).
	labels := frag.BuildLabels(codeIDs, m.cfg.NumHeads)
	if m.scheme == SchemeOurs { // SchemeOursNoMask ablates exactly this line
		frag.MaskLabelsParallel(labels)
	}
	loK := m.cfg.Order - 2
	if loK < 1 {
		loK = 1
	}
	pollution := make([]float64, m.cfg.NumHeads+1)
	trainHead := make([]bool, m.cfg.NumHeads+1)
	for i := 1; i <= m.cfg.NumHeads; i++ {
		pollution[i] = m.cfg.Lambda * math.Pow(m.cfg.Gamma, float64(i))
		// The γ^i loss decay (eq. 2) barely trains deep heads; the
		// count-based analogue is per-head example subsampling: head i
		// sees a γ^(i-1) fraction of the data. The syntax-enriched
		// scheme tolerates this (its [IGNORE]-masked deep-head task is
		// small and easy — the paper's "more robust heads" claim);
		// vanilla Medusa's deep heads stay underfit and noisy.
		h := uint64(m.trained)*2654435761 + uint64(i)*97
		trainHead[i] = float64(h%1000) < 1000*math.Pow(m.cfg.Gamma, float64(i-1))
	}
	for s := 0; s < len(codeIDs); s++ {
		ctx := ctxAt(codeStart + s)
		for i := 1; i <= m.cfg.NumHeads; i++ {
			target := labels[i][s]
			if target == tokenizer.PadID || target == tokenizer.IgnoreID {
				continue
			}
			if !trainHead[i] {
				continue
			}
			m.heads[i-1].add(ctx, target, 1)
			// Medusa-2 joint training: the head loss also moves the
			// backbone (weight λ·γ^i, eq. 2). For the syntax-enriched
			// scheme the [IGNORE] mask removes most of this
			// cross-fragment interference — exactly the paper's
			// explanation of its quality advantage. Interference lands
			// on the longest context orders only: it perturbs specific
			// contexts rather than global token statistics.
			m.base.addRange(ctx, target, pollution[i], loK, 0)
		}
	}
}

// maxInduction is the longest suffix the induction-copy mechanism
// attempts to match in the prompt region.
const maxInduction = 8

// minInduction is the shortest suffix worth matching; shorter matches
// fire on purely structural patterns and derail generation.
const minInduction = 3

// Gen is a generation session: the model plus the prompt-derived
// conditioning state (keyword seeds, the prompt token set for copy
// boosting, and the prompt region boundary for induction copying).
// Create one per decode with NewGen.
type Gen struct {
	m         *Model
	promptLen int
	seeds     []uint64
	// promptToks are content tokens present in the prompt, eligible
	// for the copy boost.
	promptToks map[int]bool
	// codePos marks prompt token positions that lie on code-like lines
	// (verbatim module headers in VGen-style prompts). Induction
	// proposals from these positions may bypass the support gate.
	codePos []bool
	// clipOff disables prompt clipping (session-free diagnostic use
	// where the whole sequence is context).
	clipOff bool
	// fork is the resumable preparation tail for copy-on-extend forks
	// (nil for session-free diagnostic Gens — see Forkable).
	fork *forkState
}

// NewGen prepares a generation session for a prompt (token ids). The
// prompt text is recovered via the tokenizer to extract conditioning
// keywords (with an IDF filter: keywords present in a large fraction of
// training prompts — clk, rst, q, widths — retrieve a soup of every
// family and only dilute the informative ones).
//
// NewGen is defined as a copy-on-extend Fork of the empty session, so
// a session built fresh and a session assembled through any chain of
// mid-prompt forks are the same computation — the property the prefix
// trie cache's byte-identical guarantee rests on.
func (m *Model) NewGen(promptIDs []int) *Gen {
	return m.emptyGen().Fork(promptIDs)
}

// isContentOrCodePunct accepts identifier-like pieces plus the
// punctuation that appears inside module headers. Whitespace is
// excluded deliberately: indentation tokenizes differently in prompt
// text than in code bodies, so echoed whitespace derails decoding —
// the table owns all whitespace decisions.
func isContentOrCodePunct(text string) bool {
	if isContentToken(text) {
		return true
	}
	switch strings.TrimSpace(text) {
	case "(", ")", ",", ";", "[", "]", ":":
		return strings.TrimSpace(text) == text
	}
	return false
}

// isWhitespaceTok reports whether a token is pure whitespace.
func isWhitespaceTok(text string) bool { return strings.TrimSpace(text) == "" }

// allDigits reports whether s consists solely of decimal digits.
func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// isContentToken reports whether a token piece carries identifier-like
// content (worth copy-boosting). Whitespace and punctuation are not.
func isContentToken(text string) bool {
	for i := 0; i < len(text); i++ {
		c := text[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' {
			return true
		}
	}
	return false
}

// Forward is one simulated forward pass: the base distribution and all
// head distributions for the current sequence. The induction-copy match
// is shared across base and heads, mirroring how Medusa heads reuse the
// backbone's last hidden state.
type Forward struct {
	Base  Dist
	Heads []Dist
}

// filterCap bounds the filtered context view (must exceed the longest
// ladder level plus the keyword context).
const filterCap = 40

// promptAnchor is how many trailing prompt tokens remain visible to
// contexts (the constant "### Response:\n" tail — identical across all
// examples, so it anchors the response start without leaking
// example-specific prose into long context levels).
const promptAnchor = 4

// filterTail returns the context view all tables are trained on: the
// last filterCap non-FRAG tokens of seq, oldest first, with the
// trailing run of FRAG markers (capped at 2) retained so fragment
// open/close states remain distinguishable.
func filterTail(seq []int) []int {
	out := make([]int, 0, filterCap+2)
	trail := 0
	for i := len(seq) - 1; i >= 0 && seq[i] == tokenizer.FragID && trail < 2; i-- {
		trail++
	}
	for i := len(seq) - 1 - trailIdx(seq); i >= 0 && len(out) < filterCap; i-- {
		if seq[i] != tokenizer.FragID {
			out = append(out, seq[i])
		}
	}
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	for t := 0; t < trail; t++ {
		out = append(out, tokenizer.FragID)
	}
	return out
}

// trailIdx counts trailing FRAG markers (uncapped) on seq.
func trailIdx(seq []int) int {
	n := 0
	for i := len(seq) - 1; i >= 0 && seq[i] == tokenizer.FragID; i-- {
		n++
	}
	return n
}

// clippedView returns the context view respecting the prompt clip.
func (g *Gen) clippedView(seq []int) []int {
	if g.clipOff || g.promptLen <= promptAnchor {
		return filterTail(seq)
	}
	// Tokens before promptLen-promptAnchor are invisible to contexts.
	lo := g.promptLen - promptAnchor
	tail := seq[lo:]
	return filterTail(tail)
}

// Forward runs one step of the model over seq (prompt + generated).
func (g *Gen) Forward(seq []int) Forward {
	var fw Forward
	matchJ, matchK := g.findInduction(seq)
	fview := g.clippedView(seq)
	fw.Base = g.baseAt(seq, fview, matchJ, matchK)
	fw.Heads = make([]Dist, len(g.m.heads))
	for i, h := range g.m.heads {
		fw.Heads[i] = g.distAt(h, seq, fview, matchJ, matchK, i+2)
	}
	return fw
}

// BaseDist returns the base model's next-token distribution.
func (g *Gen) BaseDist(seq []int) Dist {
	matchJ, matchK := g.findInduction(seq)
	return g.baseAt(seq, g.clippedView(seq), matchJ, matchK)
}

// kwFloor is the probability floor applied to the keyword expert so
// tokens outside its support are damped rather than zeroed.
const kwFloor = 0.02

// baseAt combines the base table with keyword conditioning (product of
// experts) and the shared induction match.
func (g *Gen) baseAt(seq, fview []int, matchJ, matchK int) Dist {
	table := g.m.base.predict(fview)
	// Strip trailing FRAG markers for the keyword view.
	kwView := fview
	for len(kwView) > 0 && kwView[len(kwView)-1] == tokenizer.FragID {
		kwView = kwView[:len(kwView)-1]
	}
	if len(g.seeds) > 0 && g.m.cfg.PromptBlend > 0 && len(table) > 1 {
		// Each token keeps its best supporting evidence across the
		// prompt's keywords (max, not mean: averaging dilutes the one
		// keyword that knows the answer with the many that don't).
		kwd := map[int]float64{}
		hits := 0
		for _, seed := range g.seeds {
			d := g.m.kw.predictSeeded(kwView, seed)
			if len(d) == 0 {
				continue
			}
			hits++
			for id, p := range d {
				if p > kwd[id] {
					kwd[id] = p
				}
			}
		}
		if hits > 0 {
			// Pool-preserving product of experts: conditioning
			// redistributes mass WITHIN content tokens; the base's
			// structural balance (probability of [FRAG]/<eos>
			// machinery vs content) is its own to decide.
			eta := g.m.cfg.PromptBlend
			contentMass, newMass := 0.0, 0.0
			for id, p := range table {
				if tokenizer.IsSpecial(id) {
					continue
				}
				contentMass += p
				table[id] = p * math.Pow(kwFloor+kwd[id], eta)
				newMass += table[id]
			}
			if newMass > 0 {
				scale := contentMass / newMass
				for id := range table {
					if !tokenizer.IsSpecial(id) {
						table[id] *= scale
					}
				}
			}
		}
	}
	g.copyBoost(table)
	return g.finish(table, seq, matchJ, matchK, 1)
}

// copyBoost multiplies the probability of prompt content tokens — the
// identifier-copying bias of instruction-tuned code models. Like the
// keyword expert it is pool-preserving: boosted mass is taken from
// other content tokens, never from structural machinery.
func (g *Gen) copyBoost(table map[int]float64) {
	boost := g.m.cfg.PromptCopyBoost
	if boost <= 1 || len(g.promptToks) == 0 {
		return
	}
	contentMass, newMass := 0.0, 0.0
	changed := false
	for id, p := range table {
		if tokenizer.IsSpecial(id) {
			continue
		}
		contentMass += p
		if g.promptToks[id] {
			table[id] = p * boost
			changed = true
		}
		newMass += table[id]
	}
	if !changed || newMass <= 0 {
		return
	}
	scale := contentMass / newMass
	for id := range table {
		if !tokenizer.IsSpecial(id) {
			table[id] *= scale
		}
	}
}

// distAt blends a head table with the shared induction match.
func (g *Gen) distAt(t *ngramTable, seq, fview []int, matchJ, matchK, offset int) Dist {
	table := t.predict(fview)
	g.copyBoost(table)
	return g.finish(table, seq, matchJ, matchK, offset)
}

// inductionSupportGate is the minimum table probability an induction
// proposal needs to be blended in. Without it, prompt echoes inject
// natural-language tokens into code contexts and the decoder parrots
// the prompt verbatim.
const inductionSupportGate = 0.005

func (g *Gen) finish(table map[int]float64, seq []int, matchJ, matchK, offset int) Dist {
	if matchJ >= 0 && matchJ+offset < g.promptLen {
		proposal := seq[matchJ+offset]
		// For [FRAG]-trained models, induction proposals (which come
		// from the FRAG-free prompt) only make sense at content
		// positions; when the table says a [FRAG] marker is due, let
		// the table speak. The support gate keeps echoes inside the
		// model's own code distribution.
		propText := ""
		if !tokenizer.IsSpecial(proposal) {
			propText = g.m.tok.Token(proposal)
		}
		fromCode := matchJ+offset < len(g.codePos) && g.codePos[matchJ+offset]
		supported := table[proposal] >= inductionSupportGate ||
			(fromCode && isContentOrCodePunct(propText))
		if table[tokenizer.FragID] < 0.5 && supported && !isWhitespaceTok(propText) {
			// Confidence grows with match length: a minimal match
			// mixes at CopyStrength, an 8-token match approaches
			// certainty — long verbatim echoes of the prompt (module
			// headers) must override sparse short-context table hits.
			gw := 1 - math.Pow(1-g.m.cfg.CopyStrength, float64(matchK-1)/2)
			props := map[int]float64{proposal: 1}
			return Dist{P: mix(table, props, gw)}
		}
	}
	if len(table) == 0 {
		// Cold start: escape to <eos> so generation terminates.
		return Dist{P: map[int]float64{tokenizer.EosID: 1}}
	}
	return Dist{P: table}
}

// findInduction locates the longest (k >= minInduction) re-occurrence
// of the sequence suffix inside the prompt region; returns the match
// end position and length, or (-1, 0).
//
// Two deliberate choices: the search is restricted to the prompt
// (matching self-generated text replays structural patterns and derails
// decoding, while echoing module headers from the prompt is exactly the
// useful behaviour), and [FRAG] markers are skipped when forming the
// suffix (the prompt never contains them, but an enriched model's
// generated suffix is full of them).
func (g *Gen) findInduction(seq []int) (int, int) {
	n := len(seq)
	// Collect up to maxInduction trailing content tokens, newest last.
	var suffix [maxInduction]int
	sn := 0
	for i := n - 1; i >= 0 && sn < maxInduction; i-- {
		if seq[i] == tokenizer.FragID {
			continue
		}
		sn++
		suffix[maxInduction-sn] = seq[i]
	}
	limit := g.promptLen - 1
	if limit > n-2 {
		limit = n - 2
	}
	for k := min(sn, maxInduction); k >= minInduction; k-- {
		suf := suffix[maxInduction-k:]
		for j := limit; j >= k-1; j-- {
			match := true
			for x := 0; x < k; x++ {
				if seq[j-k+1+x] != suf[x] {
					match = false
					break
				}
			}
			if match {
				return j, k
			}
		}
	}
	return -1, 0
}

// BaseDist is a session-free convenience used by tests and tools: the
// whole sequence is treated as prompt (self-echo allowed, no keyword
// conditioning).
func (m *Model) BaseDist(seq []int) Dist {
	g := &Gen{m: m, promptLen: len(seq), clipOff: true}
	return g.BaseDist(seq)
}

// HeadDist is the session-free analogue of BaseDist for head i.
func (m *Model) HeadDist(i int, seq []int) Dist {
	g := &Gen{m: m, promptLen: len(seq), clipOff: true}
	matchJ, matchK := g.findInduction(seq)
	return g.distAt(m.heads[i], seq, filterTail(seq), matchJ, matchK, i+2)
}

// Forward is a session-free convenience wrapper (tests/tools).
func (m *Model) Forward(seq []int) Forward {
	g := &Gen{m: m, promptLen: len(seq), clipOff: true}
	return g.Forward(seq)
}

// NumSeeds reports the number of active (IDF-surviving) keyword seeds —
// diagnostics for tools and tests.
func (g *Gen) NumSeeds() int { return len(g.seeds) }

// PromptLen reports the number of prompt tokens the session was
// prepared with (drafters use it to tell prompt from generated text).
func (g *Gen) PromptLen() int { return g.promptLen }

// Tokenizer exposes the model's tokenizer — grammar-aware drafters
// decode the generated region back into text to consult the syntax
// oracle, and encode synthesized constructs into draft chains.
func (g *Gen) Tokenizer() *tokenizer.Tokenizer { return g.m.tok }

// KwDF exposes a keyword's document frequency (diagnostics).
func (m *Model) KwDF(w string) int { return m.kwDF[w] }

// KwDist exposes the keyword-conditioned prediction for a sequence
// (diagnostics for tools).
func (m *Model) KwDist(seq []int, w string) Dist {
	return Dist{P: m.kw.predictSeeded(filterTail(seq), kwSeed(w))}
}
