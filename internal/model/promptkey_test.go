package model

import (
	"testing"

	"repro/internal/tokenizer"
)

// TestPromptKeyTrickyPrompts drives the shared canonicalization helpers
// over the prompts that break naive string keys: unicode (multi-byte
// runes, including ones whose lowercasing folds to ASCII), embedded
// NUL, empty input, and near-identical spellings. Distinct token
// sequences must get distinct keys; identical tokenizations must
// collapse onto one key however they were spelled.
func TestPromptKeyTrickyPrompts(t *testing.T) {
	tk := tokenizer.Train(corpusText(), 400)
	prompts := []struct {
		name, desc string
	}{
		{"empty", ""},
		{"plain", "Create a 4-bit adder."},
		{"plain-dup", "Create a 4-bit adder."},
		{"trailing-space", "Create a 4-bit adder. "},
		{"unicode", "Créate a 4-bit addér — schnell."},
		{"kelvin-sign", "Create a 4-bit adder in Kelvin mode."},
		{"embedded-nul", "Create a 4-bit\x00adder."},
		{"nul-only", "\x00"},
		{"newlines", "Create a 4-bit adder.\nmodule adder (\n"},
		{"long", string(make([]byte, 300)) + "adder"},
	}
	type keyed struct {
		name string
		ids  []int
		key  string
		hash uint64
	}
	var all []keyed
	for _, p := range prompts {
		ids := CanonicalPromptIDs(tk, p.desc)
		if len(ids) == 0 || ids[0] != tokenizer.BosID {
			t.Fatalf("%s: canonical ids must start with <bos>, got %v", p.name, ids)
		}
		all = append(all, keyed{name: p.name, ids: ids, key: PromptKeyString(ids), hash: PromptKey(ids)})
	}
	for i, a := range all {
		for j, b := range all {
			if i >= j {
				continue
			}
			idsEqual := samePrompt(a.ids, b.ids)
			if (a.key == b.key) != idsEqual {
				t.Errorf("%s vs %s: key equality %v but token equality %v",
					a.name, b.name, a.key == b.key, idsEqual)
			}
			// The FNV fast key must agree with token equality too on
			// this table (it is collision-guarded where used, but the
			// table should not collide).
			if idsEqual && a.hash != b.hash {
				t.Errorf("%s vs %s: same tokens, different hash", a.name, b.name)
			}
		}
	}
	// The dup spelling must share everything with its original.
	if all[1].key != all[2].key {
		t.Error("identical prompts produced different keys")
	}
	// PromptKeyString must be reversible in width: 4 bytes per id.
	for _, k := range all {
		if len(k.key) != 4*len(k.ids) {
			t.Errorf("%s: key width %d, want %d", k.name, len(k.key), 4*len(k.ids))
		}
	}
}

// TestPromptKeyPrefixNotEqualWhole guards the classic concatenation
// pitfall: a prompt that is a strict token prefix of another must never
// share its key or hash.
func TestPromptKeyPrefixNotEqualWhole(t *testing.T) {
	tk := tokenizer.Train(corpusText(), 400)
	full := CanonicalPromptIDs(tk, "Create an 8-bit counter with synchronous reset.")
	prefix := full[:len(full)-3]
	if PromptKeyString(full) == PromptKeyString(prefix) {
		t.Fatal("prefix and whole prompt share a string key")
	}
	if PromptKey(full) == PromptKey(prefix) {
		t.Fatal("prefix and whole prompt share a hash")
	}
}
