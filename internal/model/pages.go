package model

// Paged session residency. A decode that runs for thousands of steps —
// or is preempted and parked mid-flight by the continuous scheduler —
// must not have the prompt session it is conditioned on evicted out
// from under its working set, or every resume pays a full session
// rebuild. The trie cache therefore exposes a leasing layer: Acquire
// returns the prompt's session like Gen does, but additionally pins
// ("takes a page reference on") every session-bearing trie node along
// the prompt's prefix path. Pinned nodes are skipped by byte-budget
// eviction until the last lease drops its references, so the pages
// backing in-flight and parked decodes stay resident while stale,
// unreferenced traffic is still reclaimed.
//
// The vocabulary maps onto the trie deliberately: fork = take page
// refs (a lease on a longer prompt pins the shared stem pages its
// session forked from), evict = drop refs (Release), preempt = park
// the page set (the scheduler holds the lease across the park).
// Leases are residency hints only — a *Gen is immutable and remains
// valid after eviction — so a dropped or missing pin can never corrupt
// a decode, it can only make a later fork rebuild more than it had to.

// SessionLease pins the trie pages backing one decode's prompt session
// for the lifetime of the decode (or its parked checkpoint). Obtained
// from a LeasingCache; Release is idempotent and nil-safe, so callers
// on cacheless or non-leasing paths can hold a nil lease and release
// it unconditionally.
type SessionLease struct {
	c     *TrieCache // nil: nothing pinned (foreign model or plain cache)
	gen   *Gen
	nodes []*trieNode
	bytes int64
}

// Gen returns the leased session (nil on a nil lease).
func (l *SessionLease) Gen() *Gen {
	if l == nil {
		return nil
	}
	return l.gen
}

// Pages reports how many trie pages (session-bearing nodes) the lease
// holds references on.
func (l *SessionLease) Pages() int {
	if l == nil {
		return 0
	}
	return len(l.nodes)
}

// Bytes reports the estimated retained size of the leased pages.
func (l *SessionLease) Bytes() int64 {
	if l == nil {
		return 0
	}
	return l.bytes
}

// Release drops the lease's page references, making the pages
// evictable again once no other lease pins them. Idempotent; safe on
// nil and on leases that never pinned anything.
func (l *SessionLease) Release() {
	if l == nil || l.c == nil || l.nodes == nil {
		if l != nil {
			l.nodes = nil
		}
		return
	}
	c := l.c
	c.mu.Lock()
	for _, n := range l.nodes {
		n.pins--
		if n.pins == 0 {
			c.pinnedPages--
			c.pinnedBytes -= n.genBytes
		}
	}
	c.mu.Unlock()
	l.nodes = nil
}

// LeasingCache is a SessionCache whose sessions can be pinned against
// eviction for the lifetime of a decode. The trie cache implements it;
// the whole-prompt LRU and cacheless paths do not (their callers hold
// a nil lease).
type LeasingCache interface {
	SessionCache
	// Acquire is Gen plus page pinning: the returned lease holds the
	// session and references on the trie pages along the prompt's
	// prefix path. The caller must Release when the decode finishes or
	// is dropped.
	Acquire(m *Model, promptIDs []int) *SessionLease
}

// Acquire implements LeasingCache: fetch (or build) the prompt's
// session exactly like Gen, then pin every session-bearing node on the
// prompt's prefix path — the page set a preempted decode parks with.
// Concurrent eviction between the fetch and the pin walk can only
// shrink the pinned set (the session pointer itself stays valid), so
// the lease is always safe, at worst smaller than ideal.
func (c *TrieCache) Acquire(m *Model, promptIDs []int) *SessionLease {
	g := c.Gen(m, promptIDs)
	l := &SessionLease{gen: g}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m != m {
		return l // foreign model: Gen bypassed the trie, nothing to pin
	}
	c.leases++
	n := c.root
	pos := 0
	for {
		if n.gen != nil {
			if n.pins == 0 {
				c.pinnedPages++
				c.pinnedBytes += n.genBytes
			}
			n.pins++
			l.nodes = append(l.nodes, n)
			l.bytes += n.genBytes
		}
		if pos == len(promptIDs) {
			break
		}
		child := n.children[promptIDs[pos]]
		if child == nil || len(child.span) > len(promptIDs)-pos {
			break
		}
		matched := true
		for i, id := range child.span {
			if promptIDs[pos+i] != id {
				matched = false
				break
			}
		}
		if !matched {
			break
		}
		pos += len(child.span)
		n = child
	}
	l.c = c
	return l
}
