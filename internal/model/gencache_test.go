package model

import (
	"sync"
	"testing"

	"repro/internal/tokenizer"
)

func cacheFixture(t *testing.T) (*Model, [][]int) {
	t.Helper()
	tk := tokenizer.Train(corpusText(), 400)
	m := Train(tk, smallCfg(), SchemeOurs, trainExamples)
	var prompts [][]int
	for _, ex := range trainExamples {
		prompts = append(prompts, append([]int{tokenizer.BosID}, tk.Encode(FormatPrompt(ex.Prompt))...))
	}
	return m, prompts
}

func TestGenCacheSharesSessions(t *testing.T) {
	m, prompts := cacheFixture(t)
	c := NewGenCache(8)
	a := c.Gen(m, prompts[0])
	b := c.Gen(m, prompts[0])
	if a != b {
		t.Fatal("repeat lookup did not share the session")
	}
	if other := c.Gen(m, prompts[1]); other == a {
		t.Fatal("different prompts shared one session")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", hits, misses)
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	// Cached and fresh sessions agree on prompt-derived state.
	fresh := m.NewGen(prompts[0])
	if a.NumSeeds() != fresh.NumSeeds() || a.PromptLen() != fresh.PromptLen() {
		t.Fatal("cached session diverges from a fresh one")
	}
}

func TestGenCacheEvicts(t *testing.T) {
	m, prompts := cacheFixture(t)
	c := NewGenCache(2)
	g0 := c.Gen(m, prompts[0])
	c.Gen(m, prompts[1])
	c.Gen(m, prompts[0]) // refresh 0: prompt 1 is now LRU
	c.Gen(m, prompts[2]) // evicts prompt 1
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	if again := c.Gen(m, prompts[0]); again != g0 {
		t.Fatal("recently-used session evicted")
	}
	hits, misses := c.Stats()
	if misses != 3 { // prompts 0, 1, 2 first sightings
		t.Fatalf("hits=%d misses=%d, want 3 misses", hits, misses)
	}
}

func TestGenCacheForeignModelBypasses(t *testing.T) {
	m, prompts := cacheFixture(t)
	tk := tokenizer.Train(corpusText(), 400)
	other := Train(tk, smallCfg(), SchemeNTP, trainExamples)
	c := NewGenCache(8)
	c.Gen(m, prompts[0]) // binds the cache to m
	if c.Len() != 1 {
		t.Fatalf("len=%d, want 1", c.Len())
	}
	c.Gen(other, prompts[0]) // foreign model: built, not cached
	if c.Len() != 1 {
		t.Fatal("foreign model's session entered the cache")
	}
}

func TestGenCacheConcurrent(t *testing.T) {
	m, prompts := cacheFixture(t)
	c := NewGenCache(4)
	var wg sync.WaitGroup
	got := make([]*Gen, 32)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.Gen(m, prompts[i%len(prompts)])
		}(i)
	}
	wg.Wait()
	// After the dust settles every prompt maps to one stable session.
	for i, g := range got {
		if g == nil {
			t.Fatalf("slot %d nil", i)
		}
		if g.PromptLen() != len(prompts[i%len(prompts)]) {
			t.Fatalf("slot %d has wrong session", i)
		}
	}
}
