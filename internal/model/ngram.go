package model

// ngramTable is a set of context→successor count tables over a ladder
// of context lengths. Short lengths are dense (0,1,2,3,4); longer
// reaches use a skip ladder (6, 8, 12, 16) so the table can span a
// whole module header without storing every intermediate order.
// Counts are float64 so weighted (joint-training interference) updates
// compose cleanly with ordinary observations.
type ngramTable struct {
	levels []int // ascending context lengths
	// orders[i] maps a hash of the last levels[i] tokens to successors.
	orders []map[uint64]*succ
}

// succ is a successor distribution under one context.
type succ struct {
	total  float64
	counts map[int]float64
}

// ladder returns the context-length ladder for a maximum reach.
func ladder(maxCtx int) []int {
	var out []int
	for k := 0; k <= maxCtx && k <= 4; k++ {
		out = append(out, k)
	}
	for _, k := range []int{6, 8, 12, 16} {
		if k <= maxCtx {
			out = append(out, k)
		}
	}
	return out
}

func newNgramTable(maxCtx int) *ngramTable {
	t := &ngramTable{levels: ladder(maxCtx)}
	t.orders = make([]map[uint64]*succ, len(t.levels))
	for i := range t.orders {
		t.orders[i] = map[uint64]*succ{}
	}
	return t
}

// ctxHash hashes the last k elements of ctx (FNV-1a over token ids),
// mixed with a caller-provided seed (keyword-conditioned tables use the
// keyword hash as seed; plain tables use 0).
func ctxHash(ctx []int, k int, seed uint64) uint64 {
	h := uint64(14695981039346656037) ^ seed
	start := len(ctx) - k
	for i := start; i < len(ctx); i++ {
		v := uint64(ctx[i])
		for s := 0; s < 32; s += 8 {
			h ^= (v >> uint(s)) & 0xFF
			h *= 1099511628211
		}
	}
	return h
}

// add records one (context, next) observation with the given weight at
// every ladder level that fits the context.
func (t *ngramTable) add(ctx []int, next int, weight float64) {
	t.addSeeded(ctx, next, weight, 0)
}

func (t *ngramTable) addSeeded(ctx []int, next int, weight float64, seed uint64) {
	t.addRange(ctx, next, weight, 0, seed)
}

// addRange records the observation only at ladder levels >= loK.
// Joint-training interference uses it to pollute the longest contexts
// without bleeding into the low-order backoff levels: gradient
// interference perturbs a transformer's behaviour at specific contexts,
// it does not rewrite its global token statistics.
func (t *ngramTable) addRange(ctx []int, next int, weight float64, loK int, seed uint64) {
	for i, k := range t.levels {
		if k > len(ctx) || k < loK {
			continue
		}
		h := ctxHash(ctx, k, seed)
		s := t.orders[i][h]
		if s == nil {
			s = &succ{counts: map[int]float64{}}
			t.orders[i][h] = s
		}
		s.counts[next] += weight
		s.total += weight
	}
}

// wbScale tempers the Witten-Bell novelty estimate: a level with total
// mass T over D distinct successors keeps T/(T+wbScale·D) of the
// remaining probability. The scale keeps backoff mass small on sparse
// but fully-informative contexts (template-heavy RTL corpora), so the
// uninformative unigram level — dominated by whitespace and [FRAG] —
// cannot leak into sharp predictions.
const wbScale = 0.15

// predict builds the interpolated distribution for the next token given
// ctx, using tempered Witten-Bell confidence at each ladder level.
func (t *ngramTable) predict(ctx []int) map[int]float64 {
	return t.predictSeeded(ctx, 0)
}

func (t *ngramTable) predictSeeded(ctx []int, seed uint64) map[int]float64 {
	out := map[int]float64{}
	weight := 1.0
	for i := len(t.levels) - 1; i >= 0; i-- {
		k := t.levels[i]
		if k > len(ctx) {
			continue
		}
		s := t.orders[i][ctxHash(ctx, k, seed)]
		if s == nil || s.total <= 0 {
			continue
		}
		keep := s.total / (s.total + wbScale*float64(len(s.counts)))
		if k == 0 {
			keep = 1 // terminal level keeps all remaining mass
		}
		for id, c := range s.counts {
			out[id] += weight * keep * (c / s.total)
		}
		weight *= 1 - keep
		if weight < 1e-9 {
			break
		}
	}
	normalize(out)
	return out
}

// seen reports whether the longest fitting ladder context was observed.
func (t *ngramTable) seen(ctx []int) bool {
	for i := len(t.levels) - 1; i >= 0; i-- {
		k := t.levels[i]
		if k > len(ctx) {
			continue
		}
		return t.orders[i][ctxHash(ctx, k, 0)] != nil
	}
	return false
}

// size returns the total number of distinct contexts across levels
// (used by tests and diagnostics).
func (t *ngramTable) size() int {
	n := 0
	for _, m := range t.orders {
		n += len(m)
	}
	return n
}
