package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/frag"
	"repro/internal/tokenizer"
)

var trainExamples = []Example{
	{
		Prompt: "Create a 4-bit data register with clock clk.",
		Code: `module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
`,
	},
	{
		Prompt: "Create an 8-bit counter with synchronous reset.",
		Code: `module counter (
    input clk,
    input rst,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else q <= q + 8'd1;
    end
endmodule
`,
	},
	{
		Prompt: "Create a 2-to-1 multiplexer.",
		Code: `module mux2to1 (
    input a,
    input b,
    input sel,
    output y
);
    assign y = sel ? b : a;
endmodule
`,
	},
}

func corpusText() []string {
	var out []string
	for _, ex := range trainExamples {
		out = append(out, FormatPrompt(ex.Prompt)+ex.Code)
	}
	return out
}

func smallCfg() Config {
	cfg := CodeLlamaSim()
	cfg.VocabSize = 400
	return cfg
}

func TestDistBasics(t *testing.T) {
	d := Dist{P: map[int]float64{7: 0.5, 8: 0.3, 9: 0.2}}
	if d.Argmax() != 7 {
		t.Fatalf("Argmax = %d", d.Argmax())
	}
	if got := d.TopK(2); len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("TopK = %v", got)
	}
	h := d.Entropy()
	want := -(0.5*math.Log(0.5) + 0.3*math.Log(0.3) + 0.2*math.Log(0.2))
	if math.Abs(h-want) > 1e-12 {
		t.Fatalf("Entropy = %f, want %f", h, want)
	}
	if d.Sample(0, 0.99) != 7 {
		t.Fatal("temperature 0 must be greedy")
	}
	// u walks the CDF over sorted ids at temperature 1.
	if d.Sample(1, 0.0) != 7 || d.Sample(1, 0.999) != 9 {
		t.Fatalf("Sample edges: %d %d", d.Sample(1, 0.0), d.Sample(1, 0.999))
	}
}

func TestSampleProperty(t *testing.T) {
	d := Dist{P: map[int]float64{1: 0.25, 2: 0.25, 3: 0.5}}
	f := func(u float64, temp float64) bool {
		u = math.Abs(u)
		u -= math.Floor(u) // into [0,1)
		temp = math.Abs(temp)
		if temp > 4 {
			temp = 4
		}
		id := d.Sample(temp, u)
		return id >= 1 && id <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainNTPPredictsCorpusPatterns(t *testing.T) {
	tk := tokenizer.Train(corpusText(), 400)
	m := Train(tk, smallCfg(), SchemeNTP, trainExamples)
	if m.NumHeads() != 0 {
		t.Fatal("NTP model must have no heads")
	}
	// After "always @(" the corpus always continues with "posedge".
	seq := tk.Encode("    always @(")
	d := m.BaseDist(seq)
	next := d.Argmax()
	tok := tk.Token(next)
	if tok != "posedge" && tok != "pos" {
		t.Fatalf("after 'always @(' predicted %q", tok)
	}
}

func TestOursHeadsTrainedAndMasked(t *testing.T) {
	tk := tokenizer.Train(corpusText(), 400)
	// Repeat the corpus so the per-head γ-decay subsampling leaves all
	// heads with data.
	var examples []Example
	for i := 0; i < 20; i++ {
		examples = append(examples, trainExamples...)
	}
	ours := Train(tk, smallCfg(), SchemeOurs, examples)
	medusa := Train(tk, smallCfg(), SchemeMedusa, examples)
	if ours.NumHeads() != 10 || medusa.NumHeads() != 10 {
		t.Fatalf("heads: ours=%d medusa=%d", ours.NumHeads(), medusa.NumHeads())
	}
	// The [IGNORE] masking must reduce the training signal reaching
	// later heads relative to vanilla Medusa labels.
	lastOurs := ours.heads[9].size()
	lastMedusa := medusa.heads[9].size()
	if lastOurs >= lastMedusa {
		t.Fatalf("mask did not shrink head-10 table: ours=%d medusa=%d", lastOurs, lastMedusa)
	}
}

func TestJointTrainingPollutesBase(t *testing.T) {
	tk := tokenizer.Train(corpusText(), 400)

	// avgEntropy measures backbone noise on the model's own training
	// representation (comparisons must stay within one representation).
	// Contexts are probed through the same filtered view training used,
	// deep enough into the code region that prompt clipping is moot.
	avgEntropy := func(m *Model, encode func(code string) []int) float64 {
		total, n := 0.0, 0
		for _, ex := range trainExamples {
			ids := append([]int{tokenizer.BosID}, tk.Encode(FormatPrompt(ex.Prompt))...)
			promptLen := len(ids)
			ids = append(ids, encode(ex.Code)...)
			for p := promptLen + 20; p < len(ids); p += 3 {
				total += entropyOf(m.base.predict(filterTail(ids[:p])))
				n++
			}
		}
		return total / float64(n)
	}
	plain := func(code string) []int { return tk.Encode(code) }
	withFrags := func(code string) []int {
		ids, err := frag.EncodeWithFrags(tk, code)
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}

	// Plain representation: Medusa-2's joint training (cross-fragment
	// offset targets) perturbs the backbone relative to NTP.
	ntp := Train(tk, smallCfg(), SchemeNTP, trainExamples)
	medusa := Train(tk, smallCfg(), SchemeMedusa, trainExamples)
	hNTP, hMed := avgEntropy(ntp, plain), avgEntropy(medusa, plain)
	if hMed <= hNTP {
		t.Fatalf("Medusa base should be noisier than NTP: %f vs %f", hMed, hNTP)
	}

	// FRAG representation: the [IGNORE] masking removes most of that
	// interference (the paper's stated reason Ours beats Medusa on
	// quality). Ablating only the mask must increase backbone noise.
	ours := Train(tk, smallCfg(), SchemeOurs, trainExamples)
	noMask := Train(tk, smallCfg(), SchemeOursNoMask, trainExamples)
	hOurs, hNoMask := avgEntropy(ours, withFrags), avgEntropy(noMask, withFrags)
	if hOurs >= hNoMask {
		t.Fatalf("masked labels should clean the backbone: ours=%f nomask=%f", hOurs, hNoMask)
	}
}

// entropyOf is a test helper over raw probability maps.
func entropyOf(p map[int]float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

func TestInductionCopyEchoesHeader(t *testing.T) {
	// A VGen-style prompt spells out the module header verbatim; the
	// model must echo it (name included) even though the exact header
	// was never in training. Whitespace and unsupported NL tokens are
	// deliberately left to the table, so we assert on the decoded
	// prefix rather than any single proposal.
	tk := tokenizer.Train(corpusText(), 400)
	m := Train(tk, smallCfg(), SchemeNTP, trainExamples)
	prompt := "Complete the Verilog module below. It selects b when sel is high, else a.\nmodule mux2to1(input a, input b, input sel, output y);"
	promptIDs := append([]int{tokenizer.BosID}, tk.Encode(FormatPrompt(prompt))...)
	g := m.NewGen(promptIDs)
	seq := append([]int(nil), promptIDs...)
	for i := 0; i < 12; i++ {
		next := g.BaseDist(seq).Argmax()
		if next == tokenizer.EosID {
			break
		}
		seq = append(seq, next)
	}
	got := tk.DecodeClean(seq[len(promptIDs):])
	if !strings.HasPrefix(got, "module mux2to1") {
		t.Fatalf("echoed prefix = %q, want module mux2to1...", got)
	}
}

func TestForwardShape(t *testing.T) {
	tk := tokenizer.Train(corpusText(), 400)
	m := Train(tk, smallCfg(), SchemeOurs, trainExamples)
	seq := tk.Encode(FormatPrompt("Create a 2-to-1 multiplexer."))
	fw := m.Forward(seq)
	if len(fw.Heads) != 10 {
		t.Fatalf("heads = %d", len(fw.Heads))
	}
	if len(fw.Base.P) == 0 {
		t.Fatal("empty base distribution")
	}
	sum := 0.0
	for _, p := range fw.Base.P {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("base distribution sums to %f", sum)
	}
}

func TestTrainMoreIncremental(t *testing.T) {
	tk := tokenizer.Train(corpusText(), 400)
	m := New(tk, smallCfg(), SchemeNTP)
	m.TrainMore(trainExamples[:1])
	if m.TrainedExamples() != 1 {
		t.Fatalf("trained = %d", m.TrainedExamples())
	}
	size1 := m.base.size()
	m.TrainMore(trainExamples[1:])
	if m.TrainedExamples() != 3 {
		t.Fatalf("trained = %d", m.TrainedExamples())
	}
	if m.base.size() <= size1 {
		t.Fatal("incremental training did not grow the table")
	}
}

func TestNgramDeterminism(t *testing.T) {
	tk := tokenizer.Train(corpusText(), 400)
	a := Train(tk, smallCfg(), SchemeOurs, trainExamples)
	b := Train(tk, smallCfg(), SchemeOurs, trainExamples)
	seq := tk.Encode(FormatPrompt("Create an 8-bit counter with synchronous reset."))
	da, db := a.BaseDist(seq), b.BaseDist(seq)
	if da.Argmax() != db.Argmax() || math.Abs(da.Entropy()-db.Entropy()) > 1e-12 {
		t.Fatal("training is not deterministic")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeNTP.String() != "NTP" || SchemeMedusa.String() != "Medusa" || SchemeOurs.String() != "Ours" {
		t.Fatal("scheme names wrong")
	}
}
