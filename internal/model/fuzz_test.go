package model

import (
	"sync"
	"testing"

	"repro/internal/tokenizer"
)

// fuzzModel trains one small model shared by every fuzz execution (the
// corpus drives the trie, not the training).
var fuzzModel = sync.OnceValue(func() *Model {
	tk := tokenizer.Train(corpusText(), 400)
	return Train(tk, smallCfg(), SchemeOurs, trainExamples)
})

// FuzzTrieLookupInsert interprets the fuzz input as a batch of token
// prompts (0xFF-separated; every other byte is a token id, so the
// corpus freely spells special tokens, shared stems, duplicates and
// prefix-of-each-other prompts) and checks the trie's one invariant:
// whatever the insertion order, every returned session is equivalent to
// a from-scratch m.NewGen of the same prompt, and re-lookups share it.
// A byte budget derived from the input exercises eviction paths too.
func FuzzTrieLookupInsert(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 10, 11, 12, 0xFF, 3, 10, 11, 13})          // shared stem, sibling tails
	f.Add([]byte{3, 10, 11, 0xFF, 3, 10, 11, 12, 13, 14})      // prefix then extension
	f.Add([]byte{3, 10, 11, 12, 13, 14, 0xFF, 3, 10, 11})      // extension then prefix
	f.Add([]byte{0xFF, 0xFF, 3, 0xFF, 3})                      // empty prompts, duplicates
	f.Add([]byte{0, 1, 2, 3, 4, 5, 0, 1, 2, 0xFF, 0, 1, 2, 9}) // specials inside prompts
	f.Fuzz(func(t *testing.T, data []byte) {
		m := fuzzModel()
		var prompts [][]int
		cur := []int{}
		for _, b := range data {
			if b == 0xFF {
				prompts = append(prompts, cur)
				cur = []int{}
				continue
			}
			cur = append(cur, int(b))
		}
		prompts = append(prompts, cur)
		if len(prompts) > 16 {
			prompts = prompts[:16]
		}

		// A small budget (but never absurdly small) keyed off the input
		// length keeps eviction in play across the corpus.
		budget := int64(1<<14 + len(data)*64)
		c := NewTrieCache(budget)
		got := make([]*Gen, len(prompts))
		for i, ids := range prompts {
			got[i] = c.Gen(m, ids)
			want := m.NewGen(ids)
			if genFingerprint(got[i]) != genFingerprint(want) {
				t.Fatalf("prompt %d (%v): trie session diverges from fresh build", i, ids)
			}
			if got[i].PromptLen() != len(ids) {
				t.Fatalf("prompt %d: session len %d, want %d", i, got[i].PromptLen(), len(ids))
			}
		}
		// Second pass: repeats must stay correct (shared or rebuilt —
		// eviction may have dropped any of them, correctness may not).
		for i, ids := range prompts {
			again := c.Gen(m, ids)
			if genFingerprint(again) != genFingerprint(got[i]) {
				t.Fatalf("prompt %d: re-lookup diverged", i)
			}
		}
		// The trie's own retained state must spell real prefixes.
		c.Walk(func(prefix []int, g *Gen) {
			if g.PromptLen() != len(prefix) {
				t.Fatalf("node path len %d holds session of len %d", len(prefix), g.PromptLen())
			}
		})
	})
}
