package model

import (
	"strings"

	"repro/internal/tokenizer"
)

// forkState is the resumable tail of session preparation: everything a
// copy-on-extend Fork needs to continue preparing a longer prompt from
// where this session stopped, without re-walking the shared prefix.
//
// The state is immutable once the owning Gen is published (Fork reads
// it, never writes it), which is what lets the prefix trie hand one
// session to many concurrent decoders and forkers.
type forkState struct {
	// cleanText is the special-token-free decoding of the whole prompt
	// so far. Keyword extraction re-scans it on every fork: word and
	// rune boundaries are not compositional across appends (an extension
	// can lengthen the final word, or complete a multi-byte rune whose
	// lowercasing folds into ASCII), so an incremental keyword list
	// cannot be proven identical to a from-scratch scan — a byte scan
	// of stored text can. DecodeClean, by contrast, IS concatenative
	// per token, so the text itself extends in O(suffix).
	cleanText string
	// lineStart is the prompt index where the final, not-yet-terminated
	// line begins; pendingLine is that line's accumulated text. Code-line
	// marks before lineStart are final; the tail line must be re-judged
	// on extension because more text may join it.
	lineStart   int
	pendingLine string
}

// emptyGen is the zero-length-prompt session every prepared session
// descends from: NewGen is literally a Fork of it, so "fresh build" and
// "fork chain" cannot diverge — they are the same code path.
func (m *Model) emptyGen() *Gen {
	return &Gen{m: m, promptToks: map[int]bool{}, codePos: []bool{}, fork: &forkState{}}
}

// Forkable reports whether this session carries the resumable state
// Fork needs. Sessions from NewGen (and their forks) are forkable;
// session-free diagnostic Gens (Model.BaseDist and friends) are not.
func (g *Gen) Forkable() bool { return g.fork != nil }

// Fork returns the prepared session for the prompt that extends g's
// prompt by extra — copy-on-extend: g itself is never mutated (it may
// be shared by concurrent decoders and other forks), and only the
// uncached suffix is walked for the per-token work (copy-boost token
// set, code-line marking, clean-text append). The result is identical,
// field for field, to m.NewGen(fullPrompt): NewGen is itself a Fork
// from the empty session, and the differential/fuzz harnesses pin the
// equivalence (byte-identical decodes) on top of that.
//
// Fork panics on a session without fork state (see Forkable); the
// prefix-trie cache only ever stores forkable sessions.
func (g *Gen) Fork(extra []int) *Gen {
	if g.fork == nil {
		panic("model: Fork of a non-forkable session (use NewGen-derived sessions)")
	}
	if len(extra) == 0 {
		return g // zero extension: the shared immutable session IS the result
	}
	m := g.m
	n := g.promptLen + len(extra)
	ng := &Gen{m: m, promptLen: n, promptToks: make(map[int]bool, len(g.promptToks)+8)}
	for id := range g.promptToks {
		ng.promptToks[id] = true
	}

	// Clean text and copy-boost set advance over the suffix only.
	var sb strings.Builder
	sb.Grow(len(g.fork.cleanText) + 4*len(extra))
	sb.WriteString(g.fork.cleanText)
	for _, id := range extra {
		if tokenizer.IsSpecial(id) {
			continue
		}
		text := m.tok.Token(id)
		sb.WriteString(text)
		if isContentToken(text) {
			ng.promptToks[id] = true
		}
	}
	cleanText := sb.String()

	// Keyword seeds: full re-scan of the stored text (see forkState) —
	// a cheap byte scan, and the only way the seed list provably equals
	// a from-scratch NewGen's. The IDF filter reads immutable trained
	// counts, so filtering commutes with forking.
	for _, w := range Keywords(cleanText) {
		if m.trained >= 50 && float64(m.kwDF[w]) > 0.15*float64(m.trained) {
			continue
		}
		ng.seeds = append(ng.seeds, kwSeed(w))
	}

	// Code-line marks: resume the line scan. Marks up to the parent's
	// last line break are final and copied; the parent's tail line is
	// re-judged with whatever the extension appends to it (it may gain
	// or lose code-ness), which is why the provisional tail marks from
	// the parent's own final flush are NOT copied.
	ng.codePos = make([]bool, n)
	copy(ng.codePos, g.codePos[:g.fork.lineStart])
	lineStart := g.fork.lineStart
	var line strings.Builder
	line.WriteString(g.fork.pendingLine)
	flush := func(end int) {
		if codeyLine(line.String()) {
			for i := lineStart; i < end; i++ {
				ng.codePos[i] = true
			}
		}
		line.Reset()
		lineStart = end
	}
	for i := g.promptLen; i < n; i++ {
		id := extra[i-g.promptLen]
		text := ""
		if !tokenizer.IsSpecial(id) {
			text = m.tok.Token(id)
		}
		line.WriteString(text)
		if strings.Contains(text, "\n") {
			flush(i + 1)
		}
	}
	// Save the resumable state BEFORE the final flush: that flush is
	// provisional (the line it judges may keep growing in a deeper fork).
	ng.fork = &forkState{cleanText: cleanText, lineStart: lineStart, pendingLine: line.String()}
	flush(n)
	return ng
}

// codeyLine reports whether a prompt line looks like verbatim Verilog
// (a lowercase header keyword starting a short line that carries header
// punctuation). Natural-language spec lines — which capitalize
// "Inputs:" and never start with lowercase header syntax — stay
// unflagged, so prompt echoing cannot parrot prose.
func codeyLine(s string) bool {
	t := strings.TrimSpace(s)
	// Verbatim code lines are short and start with header syntax;
	// prose spec sentences (which may mention "module" and contain
	// parentheses) are long or start with capitalized words.
	starts := strings.HasPrefix(t, "module ") || strings.HasPrefix(t, "input ") ||
		strings.HasPrefix(t, "output ") || strings.HasPrefix(t, "assign ") ||
		strings.HasPrefix(t, "endmodule") || strings.HasPrefix(t, "wire ") ||
		strings.HasPrefix(t, "reg ")
	return len(t) < 120 && starts &&
		(strings.Contains(t, "(") || strings.Contains(t, ";") || t == "endmodule")
}

// MemBytes approximates the session's retained memory for the trie
// cache's byte-budget accounting: slice and map payloads plus the
// stored clean text. An estimate is enough — eviction needs relative
// weight, not malloc truth.
func (g *Gen) MemBytes() int64 {
	b := int64(96) // struct, headers, trie bookkeeping
	b += int64(len(g.seeds)) * 8
	b += int64(len(g.promptToks)) * 16
	b += int64(len(g.codePos))
	if g.fork != nil {
		b += int64(len(g.fork.cleanText)) + int64(len(g.fork.pendingLine)) + 48
	}
	return b
}
