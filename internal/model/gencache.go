package model

import (
	"container/list"
	"sync"
)

// GenCache is a concurrency-safe LRU of prompt-derived generation
// sessions (*Gen), keyed by the prompt token ids. Preparing a Gen walks
// the whole prompt — keyword extraction with IDF filtering, the
// copy-boost token set, code-line marking — so across requests that
// share a prompt prefix (benchmark reruns, retries, n-samples-per-
// prompt sweeps) the cache removes that work entirely and shares one
// immutable session: Gen values never mutate after construction, which
// is the same property that lets decoder workers share a model.
//
// A GenCache is bound to the first Model it serves; sessions are
// model-specific, so lookups with a different model bypass the cache
// rather than cross-contaminate.
type GenCache struct {
	mu    sync.Mutex
	m     *Model
	max   int
	order *list.List // front = most recent; values are *genEntry
	items map[uint64]*list.Element

	hits, misses uint64
	tokensSaved  uint64
}

type genEntry struct {
	key    uint64
	prompt []int
	gen    *Gen
}

// NewGenCache creates a cache holding up to max prepared sessions.
func NewGenCache(max int) *GenCache {
	if max <= 0 {
		max = 256
	}
	return &GenCache{max: max, order: list.New(), items: map[uint64]*list.Element{}}
}

// samePrompt guards against hash collisions: a hit must match the
// stored prompt exactly.
func samePrompt(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Gen returns the prepared session for promptIDs, building and caching
// it on first sight. Safe for concurrent use; the returned *Gen is
// shared and immutable.
func (c *GenCache) Gen(m *Model, promptIDs []int) *Gen {
	c.mu.Lock()
	if c.m == nil {
		c.m = m
	} else if c.m != m {
		// Foreign model: sessions would be wrong, skip the cache.
		c.mu.Unlock()
		return m.NewGen(promptIDs)
	}
	key := PromptKey(promptIDs)
	if el, ok := c.items[key]; ok {
		e := el.Value.(*genEntry)
		if samePrompt(e.prompt, promptIDs) {
			c.order.MoveToFront(el)
			c.hits++
			c.tokensSaved += uint64(len(promptIDs))
			g := e.gen
			c.mu.Unlock()
			return g
		}
	}
	c.misses++
	c.mu.Unlock()

	// Build outside the lock: session preparation is the expensive part
	// and must not serialize concurrent decoders. Duplicate concurrent
	// builds of one prompt are benign (identical immutable values; the
	// last writer wins the slot).
	g := m.NewGen(promptIDs)

	c.mu.Lock()
	defer c.mu.Unlock()
	e := &genEntry{key: key, prompt: append([]int(nil), promptIDs...), gen: g}
	if el, ok := c.items[key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return g
	}
	c.items[key] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*genEntry).key)
	}
	return g
}

// Stats reports lifetime cache hits and misses.
func (c *GenCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// SessionStats implements SessionCache. A whole-prompt LRU can only
// hit exactly, so PartialHits is always zero and an exact hit saves
// the entire prompt's preparation.
func (c *GenCache) SessionStats() SessionStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SessionStats{
		Hits:        c.hits,
		Misses:      c.misses,
		TokensSaved: c.tokensSaved,
		Entries:     c.order.Len(),
	}
}

// Len reports the current number of cached sessions.
func (c *GenCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
