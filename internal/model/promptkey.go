package model

import (
	"repro/internal/tokenizer"
)

// This file is the single home of prompt-key canonicalization. Every
// layer that keys on a prompt — the decoder's own conditioning, the
// serving layer's result-cache and single-flight keys, and the prefix
// trie — derives its key through these helpers, so the key spaces can
// never drift apart (previously the serving layer canonicalized on its
// own and the session caches hashed raw id slices independently).

// CanonicalPromptIDs renders a natural-language description into the
// exact token-id sequence the decoder conditions on: <bos> plus the
// BPE encoding of the Alpaca-style training template. Two descriptions
// that tokenize identically are the same prompt everywhere — same
// decode, same cache entry, same trie path.
func CanonicalPromptIDs(tok *tokenizer.Tokenizer, desc string) []int {
	return append([]int{tokenizer.BosID}, tok.Encode(FormatPrompt(desc))...)
}

// PromptKeyString packs a token-id sequence into a compact, collision-
// free string key (4 little-endian bytes per id; length is implicit in
// the fixed width). Unlike a hash it cannot conflate distinct prompts,
// which matters for the serving result cache — a collision there would
// return the wrong generation, not just rebuild a session. Handles any
// byte content losslessly: ids derived from prompts with embedded NUL,
// invalid UTF-8 or empty text all round-trip distinctly.
func PromptKeyString(ids []int) string {
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// PromptKey hashes a prompt id sequence (FNV-1a over ids and length) —
// the fast map key of the whole-prompt session cache, which guards the
// hash with an exact prompt comparison (see GenCache).
func PromptKey(promptIDs []int) uint64 {
	h := uint64(14695981039346656037)
	mixByte := func(b uint64) {
		h ^= b & 0xFF
		h *= 1099511628211
	}
	mix := func(v uint64) {
		for s := 0; s < 32; s += 8 {
			mixByte(v >> uint(s))
		}
	}
	mix(uint64(len(promptIDs)))
	for _, id := range promptIDs {
		mix(uint64(id))
	}
	return h
}

// SessionStats is the common counter snapshot of a session cache.
type SessionStats struct {
	// Hits counts exact whole-prompt reuses; PartialHits counts reuses
	// of a strict prefix (trie cache only — the whole-prompt LRU can
	// only hit exactly); Misses counts from-scratch session builds.
	Hits, PartialHits, Misses uint64
	// TokensSaved is the total number of prompt tokens whose session
	// preparation was skipped by reuse (full prompt length on an exact
	// hit, matched prefix length on a partial hit).
	TokensSaved uint64
	// Entries is the current number of cached sessions; Bytes is the
	// cache's estimated retained memory (trie cache only).
	Entries int
	Bytes   int64
	// PinnedPages/PinnedBytes count the sessions currently held
	// resident by live decode leases and their retained bytes; Leases
	// is the lifetime Acquire count (trie cache only — zero elsewhere).
	PinnedPages int
	PinnedBytes int64
	Leases      uint64
}

// Lookups is the total number of cache probes.
func (s SessionStats) Lookups() uint64 { return s.Hits + s.PartialHits + s.Misses }

// HitRate is the fraction of lookups that reused any prefix (exact or
// partial), 0 when idle.
func (s SessionStats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits+s.PartialHits) / float64(l)
	}
	return 0
}

// SessionCache is a shared store of prepared generation sessions. Both
// implementations — the whole-prompt LRU (GenCache) and the token-
// prefix trie (TrieCache) — return sessions identical to m.NewGen's,
// so a cache never changes decode outputs, only the work of preparing
// them. Implementations are safe for concurrent use and the returned
// *Gen is shared and immutable.
type SessionCache interface {
	Gen(m *Model, promptIDs []int) *Gen
	SessionStats() SessionStats
}
