package model

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tokenizer"
)

// stemPrompts builds token prompts sharing a long instruction stem with
// short divergent tails — the affinity-routed traffic shape the trie
// exists for.
func stemPrompts(tk *tokenizer.Tokenizer, variants int) [][]int {
	stem := "Please act as a professional Verilog designer. Create a module named stem_unit with clock clk and reset rst"
	var out [][]int
	for i := 0; i < variants; i++ {
		out = append(out, CanonicalPromptIDs(tk, fmt.Sprintf("%s and a %d-bit output q%d.", stem, 2+i, i)))
	}
	return out
}

func trieFixture(t *testing.T) (*Model, *tokenizer.Tokenizer) {
	t.Helper()
	tk := tokenizer.Train(corpusText(), 400)
	return Train(tk, smallCfg(), SchemeOurs, trainExamples), tk
}

func TestTrieExactHitSharesSession(t *testing.T) {
	m, tk := trieFixture(t)
	c := NewTrieCache(0)
	ids := CanonicalPromptIDs(tk, trainExamples[0].Prompt)
	a := c.Gen(m, ids)
	b := c.Gen(m, ids)
	if a != b {
		t.Fatal("repeat lookup did not share the session")
	}
	st := c.SessionStats()
	if st.Hits != 1 || st.Misses != 1 || st.PartialHits != 0 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", st)
	}
	if st.TokensSaved != uint64(len(ids)) {
		t.Fatalf("tokens saved %d, want %d (the whole prompt)", st.TokensSaved, len(ids))
	}
	genEquiv(t, a, m.NewGen(ids), "exact hit")
}

// TestTriePartialHitExtends: a prompt extending a cached one must fork
// from it (partial hit) and still equal a fresh build.
func TestTriePartialHitExtends(t *testing.T) {
	m, tk := trieFixture(t)
	c := NewTrieCache(0)
	prompts := stemPrompts(tk, 2)
	short := prompts[0][:20]
	c.Gen(m, short)
	full := prompts[0]
	g := c.Gen(m, full)
	st := c.SessionStats()
	if st.PartialHits != 1 {
		t.Fatalf("partial hits %d, want 1 (stats %+v)", st.PartialHits, st)
	}
	if st.TokensSaved != 20 {
		t.Fatalf("tokens saved %d, want 20 (the cached prefix)", st.TokensSaved)
	}
	genEquiv(t, g, m.NewGen(full), "partial hit")
}

// TestTrieSharedStemMaterialized: after two sibling prompts split an
// edge, a third sibling must partial-hit the materialized stem session,
// not fall back to a from-scratch build.
func TestTrieSharedStemMaterialized(t *testing.T) {
	m, tk := trieFixture(t)
	c := NewTrieCache(0)
	prompts := stemPrompts(tk, 3)
	c.Gen(m, prompts[0])
	c.Gen(m, prompts[1]) // splits prompts[0]'s edge, materializes the stem
	g := c.Gen(m, prompts[2])
	st := c.SessionStats()
	if st.PartialHits < 1 {
		t.Fatalf("third sibling did not partial-hit the stem (stats %+v)", st)
	}
	if st.TokensSaved == 0 {
		t.Fatal("no tokens saved across siblings")
	}
	genEquiv(t, g, m.NewGen(prompts[2]), "stem fork")

	// Per-depth accounting: the stem hits land in a deep bucket.
	var total uint64
	for _, n := range c.DepthHits() {
		total += n
	}
	if total != st.Hits+st.PartialHits {
		t.Fatalf("depth histogram sums to %d, want %d", total, st.Hits+st.PartialHits)
	}
}

// TestTrieEvictsByBudget: a tiny byte budget must bound the population
// by staleness without ever corrupting lookups.
func TestTrieEvictsByBudget(t *testing.T) {
	m, tk := trieFixture(t)
	prompts := stemPrompts(tk, 8)
	var budget int64
	for _, ids := range prompts[:2] {
		budget += m.NewGen(ids).MemBytes()
	}
	c := NewTrieCache(budget * 2)
	for _, ids := range prompts {
		c.Gen(m, ids)
	}
	if c.Len() >= len(prompts)+1 {
		t.Fatalf("no eviction: %d sessions cached", c.Len())
	}
	if c.Bytes() > 2*budget+m.NewGen(prompts[0]).MemBytes()+256 {
		t.Fatalf("bytes %d far over budget %d", c.Bytes(), 2*budget)
	}
	// Evicted or not, every prompt still resolves to a correct session.
	for i, ids := range prompts {
		genEquiv(t, c.Gen(m, ids), m.NewGen(ids), fmt.Sprintf("post-eviction prompt %d", i))
	}
}

func TestTrieForeignModelBypasses(t *testing.T) {
	m, tk := trieFixture(t)
	other := Train(tk, smallCfg(), SchemeNTP, trainExamples)
	c := NewTrieCache(0)
	ids := CanonicalPromptIDs(tk, trainExamples[0].Prompt)
	c.Gen(m, ids)
	if c.Len() != 1 {
		t.Fatalf("len=%d, want 1", c.Len())
	}
	c.Gen(other, ids)
	if c.Len() != 1 {
		t.Fatal("foreign model's session entered the trie")
	}
}

// TestTrieConcurrentSoak hammers the trie from many goroutines with
// overlapping prefixes (run under -race in CI). Two invariants: a
// session's observable state never changes after it was shared
// (fingerprints taken at hand-off still hold at the end), and every
// session the trie retains — including materialized stem sessions the
// workload never requested directly — equals a fresh build of its
// reconstructed prefix.
func TestTrieConcurrentSoak(t *testing.T) {
	soakTrie(t, NewTrieCache(0), true)
}

// TestTrieConcurrentSoakUnderEviction repeats the soak with a byte
// budget far too small for the workload, so concurrent lookups race
// against evictions that prune and re-form the paths they matched —
// the interleaving where a stale lookup depth can exceed a later split
// depth (stem materialization must rebuild from scratch, not slice
// negatively).
func TestTrieConcurrentSoakUnderEviction(t *testing.T) {
	soakTrie(t, NewTrieCache(1<<12), false)
}

func soakTrie(t *testing.T, c *TrieCache, expectReuse bool) {
	t.Helper()
	m, tk := trieFixture(t)
	prompts := stemPrompts(tk, 6)
	// Overlap harder: every prefix boundary of every prompt is its own
	// request, so goroutines constantly extend each other's entries.
	var work [][]int
	for _, ids := range prompts {
		for _, cut := range []int{8, 16, len(ids)} {
			if cut <= len(ids) {
				work = append(work, ids[:cut])
			}
		}
	}

	const goroutines = 16
	const rounds = 40
	type obs struct {
		g     *Gen
		print uint64
		ids   []int
	}
	observed := make([][]obs, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ids := work[(w*rounds+r*7)%len(work)]
				g := c.Gen(m, ids)
				observed[w] = append(observed[w], obs{g: g, print: genFingerprint(g), ids: ids})
			}
		}(w)
	}
	wg.Wait()

	for w, seen := range observed {
		for i, o := range seen {
			if genFingerprint(o.g) != o.print {
				t.Fatalf("goroutine %d obs %d: session mutated after sharing", w, i)
			}
			if o.g.PromptLen() != len(o.ids) {
				t.Fatalf("goroutine %d obs %d: wrong session (len %d, want %d)", w, i, o.g.PromptLen(), len(o.ids))
			}
		}
	}

	// Walk the trie: every retained session must match a fresh build of
	// the prefix its node path spells (the "checksum of prompt ids per
	// node" check — the path IS the prompt).
	nodes := 0
	c.Walk(func(prefix []int, g *Gen) {
		nodes++
		if genFingerprint(g) != genFingerprint(m.NewGen(prefix)) {
			t.Errorf("node at depth %d holds a session diverging from a fresh build", len(prefix))
		}
	})
	st := c.SessionStats()
	if st.Lookups() != goroutines*rounds {
		t.Fatalf("lookups %d, want %d", st.Lookups(), goroutines*rounds)
	}
	if !expectReuse {
		return // a starved budget may legitimately evict everything
	}
	if nodes == 0 {
		t.Fatal("soak left an empty trie")
	}
	if st.PartialHits == 0 || st.Hits == 0 {
		t.Fatalf("soak exercised no reuse: %+v", st)
	}
}
