package model

import "testing"

// TestLeasePinsAgainstEviction: pages leased by an in-flight decode
// must survive byte-budget eviction pressure, and become reclaimable
// again the moment the lease is released.
func TestLeasePinsAgainstEviction(t *testing.T) {
	m, tk := trieFixture(t)
	prompts := stemPrompts(tk, 8)
	budget := 2 * m.NewGen(prompts[0]).MemBytes()
	c := NewTrieCache(budget)

	lease := c.Acquire(m, prompts[0])
	if lease.Pages() < 1 || lease.Bytes() <= 0 {
		t.Fatalf("lease pinned %d pages / %d bytes, want at least the leaf", lease.Pages(), lease.Bytes())
	}
	for _, ids := range prompts[1:] {
		c.Gen(m, ids) // eviction pressure well past the budget
	}
	st := c.SessionStats()
	if st.PinnedPages < 1 || st.PinnedBytes <= 0 || st.Leases != 1 {
		t.Fatalf("pinned stats %+v, want >=1 page pinned by 1 lease", st)
	}
	hits := st.Hits
	if g := c.Gen(m, prompts[0]); g != lease.Gen() {
		t.Fatal("leased session was evicted under pressure")
	}
	if st = c.SessionStats(); st.Hits != hits+1 {
		t.Fatalf("re-lookup of the leased prompt was not an exact hit (stats %+v)", st)
	}

	lease.Release()
	lease.Release() // idempotent
	if st = c.SessionStats(); st.PinnedPages != 0 || st.PinnedBytes != 0 {
		t.Fatalf("pins survived release: %+v", st)
	}
	// With the pin gone the page is ordinary LRU prey: touch everything
	// else, add pressure, and the once-leased session must go.
	for _, ids := range prompts[1:] {
		c.Gen(m, ids)
	}
	hits = c.SessionStats().Hits
	c.Gen(m, prompts[0])
	if st = c.SessionStats(); st.Hits != hits {
		t.Fatalf("released page was never evicted under pressure (stats %+v)", st)
	}
}

// TestLeasePinsSharedStem: a lease on a prompt whose session forked
// from a cached prefix pins the stem page too — fork = take page refs.
func TestLeasePinsSharedStem(t *testing.T) {
	m, tk := trieFixture(t)
	c := NewTrieCache(0)
	full := stemPrompts(tk, 1)[0]
	c.Gen(m, full[:20])
	lease := c.Acquire(m, full)
	defer lease.Release()
	if lease.Pages() < 2 {
		t.Fatalf("lease pinned %d pages, want prefix page + leaf", lease.Pages())
	}
	if st := c.SessionStats(); st.PinnedPages != lease.Pages() {
		t.Fatalf("stats report %d pinned pages, lease holds %d", st.PinnedPages, lease.Pages())
	}
}

// TestLeaseDegenerateCases: foreign-model leases pin nothing but still
// carry a correct session, and the nil lease is safe everywhere — the
// contract that lets cacheless decode paths hold one unconditionally.
func TestLeaseDegenerateCases(t *testing.T) {
	m, tk := trieFixture(t)
	other := Train(tk, smallCfg(), SchemeNTP, trainExamples)
	c := NewTrieCache(0)
	ids := CanonicalPromptIDs(tk, trainExamples[0].Prompt)
	c.Gen(m, ids) // binds the cache to m
	l := c.Acquire(other, ids)
	if l.Pages() != 0 {
		t.Fatalf("foreign-model lease pinned %d pages", l.Pages())
	}
	if l.Gen() == nil {
		t.Fatal("foreign-model lease has no session")
	}
	l.Release()

	var nilLease *SessionLease
	nilLease.Release()
	if nilLease.Gen() != nil || nilLease.Pages() != 0 || nilLease.Bytes() != 0 {
		t.Fatal("nil lease is not inert")
	}
}
