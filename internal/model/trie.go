package model

import (
	"container/list"
	"sync"
)

// TrieCache is a token-prefix trie of prepared generation sessions —
// the successor of the whole-prompt GenCache LRU. Where the LRU can
// only reuse a session when the entire prompt matches, the trie keys
// sessions on true token prefixes: a lookup returns the longest cached
// prefix of the requested prompt, and the missing suffix is prepared by
// a copy-on-extend Gen.Fork over only the uncached tokens. On fleets
// where the affinity router concentrates shared-prefix traffic, this
// turns "miss, rebuild everything" into "partial hit, extend the stem"
// — the tokens-recomputed-per-request drop PrefixBench measures.
//
// Structure: a compressed (radix) trie over token ids. Nodes are
// immutable from a reader's point of view — sessions (*Gen) never
// mutate after construction, edges only change under the cache lock —
// so one session is safely shared by any number of concurrent decoders
// and forks. Sessions live at every previously-requested prompt and,
// crucially, at every divergence point between prompts: when a new
// prompt splits an existing edge, the shared stem's session is
// materialized so future siblings fork from the stem instead of from a
// much shallower ancestor.
//
// Eviction is staleness-aware: session-bearing nodes form an LRU by
// last touch, and when the estimated retained bytes exceed the budget
// the stalest sessions are dropped (and structural nodes that no
// longer lead anywhere are pruned). Unlike an entry-count LRU this
// accounts long prompts as costing more than short ones.
//
// Like GenCache, a TrieCache binds to the first Model it serves and
// bypasses itself for any other model.
type TrieCache struct {
	mu       sync.Mutex
	m        *Model
	maxBytes int64
	bytes    int64
	root     *trieNode
	lru      *list.List // session-bearing nodes; front = most recently touched
	clock    uint64     // logical last-touch clock

	hits, partialHits, misses uint64
	tokensSaved               uint64
	depthHits                 [TrieDepthBuckets]uint64

	// Page-lease accounting (see pages.go): pinnedPages counts nodes
	// with pins > 0, pinnedBytes their retained session bytes, leases
	// the lifetime Acquire calls.
	pinnedPages int
	pinnedBytes int64
	leases      uint64
}

// DefaultTrieBytes is the byte budget selected by NewTrieCache(0).
const DefaultTrieBytes = 64 << 20

// TrieDepthBuckets sizes the per-depth hit histogram: bucket i counts
// hits whose matched prefix depth d satisfies 2^i <= d < 2^(i+1)
// (bucket 0 additionally holds d == 1; the last bucket is open-ended).
const TrieDepthBuckets = 12

// trieNode is one radix-trie node: the edge span from its parent, the
// cumulative prefix depth, and optionally the prepared session for the
// prefix ending here. Nodes without a session are structural — shared
// stems whose session was evicted or never materialized.
type trieNode struct {
	parent   *trieNode
	span     []int // edge label from parent (root: empty)
	depth    int   // prefix length through span
	children map[int]*trieNode

	gen      *Gen
	genBytes int64
	el       *list.Element // LRU slot while gen != nil
	touch    uint64
	// pins is the page refcount: the number of live SessionLeases
	// holding this node's session resident. Eviction skips pinned
	// nodes (see pages.go).
	pins int
}

// NewTrieCache creates a prefix trie holding sessions within an
// estimated byte budget (0 selects DefaultTrieBytes).
func NewTrieCache(maxBytes int64) *TrieCache {
	if maxBytes <= 0 {
		maxBytes = DefaultTrieBytes
	}
	return &TrieCache{
		maxBytes: maxBytes,
		root:     &trieNode{children: map[int]*trieNode{}},
		lru:      list.New(),
	}
}

// spanBytes is the accounted weight of an edge label.
func spanBytes(span []int) int64 { return int64(len(span))*8 + 48 }

// depthBucket maps a matched prefix depth to its histogram bucket.
func depthBucket(d int) int {
	b := 0
	for d > 1 {
		d >>= 1
		b++
	}
	if b >= TrieDepthBuckets {
		b = TrieDepthBuckets - 1
	}
	return b
}

// Gen returns the prepared session for promptIDs: the cached session on
// an exact prefix hit, a copy-on-extend fork of the longest cached
// prefix on a partial hit, or a fresh build on a miss — in every case
// identical to m.NewGen(promptIDs). Safe for concurrent use; the
// returned *Gen is shared and immutable.
func (c *TrieCache) Gen(m *Model, promptIDs []int) *Gen {
	c.mu.Lock()
	if c.m == nil {
		c.m = m
	} else if c.m != m {
		// Foreign model: sessions would be wrong, skip the cache.
		c.mu.Unlock()
		return m.NewGen(promptIDs)
	}
	best, depth := c.lookupLocked(promptIDs)
	c.clock++
	if best != nil {
		best.touch = c.clock
		c.lru.MoveToFront(best.el)
	}
	switch {
	case best != nil && depth == len(promptIDs):
		c.hits++
		c.tokensSaved += uint64(depth)
		c.depthHits[depthBucket(depth)]++
		g := best.gen
		c.mu.Unlock()
		return g
	case best != nil:
		c.partialHits++
		c.tokensSaved += uint64(depth)
		c.depthHits[depthBucket(depth)]++
	default:
		c.misses++
	}
	var parent *Gen
	if best != nil {
		parent = best.gen
	}
	c.mu.Unlock()

	// Build outside the lock: session preparation is the expensive part
	// and must not serialize concurrent decoders. Forking reads only the
	// parent's immutable state. Duplicate concurrent builds of one
	// prompt are benign: insertLocked keeps the first session attached
	// and every caller returns whatever the node holds.
	var g *Gen
	if parent != nil {
		g = parent.Fork(promptIDs[depth:])
	} else {
		g = m.NewGen(promptIDs)
	}

	c.mu.Lock()
	leaf, split := c.insertLocked(promptIDs, g)
	g = leaf.gen
	stemDepth := 0
	if split != nil && split.gen == nil {
		stemDepth = split.depth
	}
	c.evictLocked(leaf)
	c.mu.Unlock()

	if stemDepth > 0 {
		// The insert split an existing edge: promptIDs[:stemDepth] is a
		// prefix shared by at least two distinct prompts — exactly the
		// stem future siblings will want to fork from. Materialize its
		// session now (again outside the lock). Usually the looked-up
		// parent covers a prefix of the stem and the fork is over stem
		// tokens only — but depth was captured in the earlier critical
		// section, and between the two the matched path may have been
		// evicted and re-formed shallower by concurrent traffic, leaving
		// stemDepth < depth; build the stem from scratch then.
		var gs *Gen
		if parent != nil && stemDepth >= depth {
			gs = parent.Fork(promptIDs[depth:stemDepth])
		} else {
			gs = m.NewGen(promptIDs[:stemDepth])
		}
		c.mu.Lock()
		if n := c.nodeAtLocked(promptIDs[:stemDepth]); n != nil && n.gen == nil {
			c.clock++
			n.gen, n.genBytes, n.touch = gs, gs.MemBytes(), c.clock
			n.el = c.lru.PushFront(n)
			c.bytes += n.genBytes
			c.evictLocked(nil)
		}
		c.mu.Unlock()
	}
	return g
}

// lookupLocked walks the trie along promptIDs and returns the deepest
// session-bearing node whose prefix the prompt extends (possibly the
// whole prompt), with its depth. Returns (nil, 0) when no cached
// prefix exists.
func (c *TrieCache) lookupLocked(ids []int) (*trieNode, int) {
	n := c.root
	pos := 0
	var best *trieNode
	for {
		if n.gen != nil {
			best = n
		}
		if pos == len(ids) {
			break
		}
		child := n.children[ids[pos]]
		if child == nil || len(child.span) > len(ids)-pos {
			// No edge, or the edge overshoots the prompt: any session at
			// or below child covers a prefix longer than the prompt and
			// cannot seed it.
			break
		}
		matched := true
		for i, id := range child.span {
			if ids[pos+i] != id {
				matched = false
				break
			}
		}
		if !matched {
			break
		}
		pos += len(child.span)
		n = child
	}
	if best == nil {
		return nil, 0
	}
	return best, best.depth
}

// nodeAtLocked returns the node whose prefix is exactly ids, nil if the
// trie has no node at that boundary (e.g. it was pruned meanwhile).
func (c *TrieCache) nodeAtLocked(ids []int) *trieNode {
	n := c.root
	pos := 0
	for pos < len(ids) {
		child := n.children[ids[pos]]
		if child == nil || len(child.span) > len(ids)-pos {
			return nil
		}
		for i, id := range child.span {
			if ids[pos+i] != id {
				return nil
			}
		}
		pos += len(child.span)
		n = child
	}
	return n
}

// insertLocked attaches g at the node for ids (creating and splitting
// nodes as needed) and returns that node plus the edge-split node, if
// the insert created one — the shared stem the caller should
// materialize a session for. If the node already holds a session (a
// concurrent duplicate build won the race), the existing session is
// kept: first writer wins, and callers return the node's session.
func (c *TrieCache) insertLocked(ids []int, g *Gen) (leaf, split *trieNode) {
	n := c.root
	pos := 0
	for pos < len(ids) {
		child := n.children[ids[pos]]
		if child == nil {
			nn := &trieNode{
				parent:   n,
				span:     append([]int(nil), ids[pos:]...),
				depth:    len(ids),
				children: map[int]*trieNode{},
			}
			n.children[ids[pos]] = nn
			c.bytes += spanBytes(nn.span)
			n = nn
			pos = len(ids)
			break
		}
		k := 0
		for k < len(child.span) && pos+k < len(ids) && child.span[k] == ids[pos+k] {
			k++
		}
		if k == len(child.span) {
			n = child
			pos += k
			continue
		}
		// Diverged (or ran out of prompt) mid-edge: split the edge at k.
		mid := &trieNode{
			parent:   n,
			span:     append([]int(nil), child.span[:k]...),
			depth:    child.depth - len(child.span) + k,
			children: map[int]*trieNode{},
		}
		child.span = append([]int(nil), child.span[k:]...)
		child.parent = mid
		mid.children[child.span[0]] = child
		n.children[mid.span[0]] = mid
		c.bytes += spanBytes(nil) // net new node overhead; span tokens just moved
		if pos+k < len(ids) {
			// True divergence: mid is a shared stem of two prompts.
			split = mid
			nn := &trieNode{
				parent:   mid,
				span:     append([]int(nil), ids[pos+k:]...),
				depth:    len(ids),
				children: map[int]*trieNode{},
			}
			mid.children[ids[pos+k]] = nn
			c.bytes += spanBytes(nn.span)
			n = nn
		} else {
			// The prompt ends exactly at the split: mid IS its node.
			n = mid
		}
		pos = len(ids)
		break
	}
	c.clock++
	n.touch = c.clock
	if n.gen == nil {
		n.gen, n.genBytes = g, g.MemBytes()
		c.bytes += n.genBytes
		n.el = c.lru.PushFront(n)
	} else {
		c.lru.MoveToFront(n.el)
	}
	return n, split
}

// evictLocked drops the stalest sessions until the byte budget holds,
// never touching keep (the session just inserted — the cache must stay
// useful even when one session exceeds the budget) and never touching
// pinned nodes (pages leased by in-flight or parked decodes — see
// pages.go), which are skipped in place rather than ending the scan so
// stale unpinned sessions behind them are still reclaimed. Structural
// nodes left childless and session-less are pruned upward;
// single-child structural chains are kept un-merged (re-merging edges
// buys little once spans are shared, and keeps eviction O(evicted)).
func (c *TrieCache) evictLocked(keep *trieNode) {
	for e := c.lru.Back(); e != nil && c.bytes > c.maxBytes; {
		node := e.Value.(*trieNode)
		prev := e.Prev()
		if node == keep || node.pins > 0 {
			e = prev
			continue
		}
		c.lru.Remove(e)
		c.bytes -= node.genBytes
		node.gen, node.genBytes, node.el = nil, 0, nil
		for n := node; n != c.root && n.gen == nil && n.pins == 0 && len(n.children) == 0; {
			p := n.parent
			delete(p.children, n.span[0])
			c.bytes -= spanBytes(n.span)
			n.parent = nil
			n = p
		}
		e = prev
	}
}

// SessionStats implements SessionCache.
func (c *TrieCache) SessionStats() SessionStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SessionStats{
		Hits:        c.hits,
		PartialHits: c.partialHits,
		Misses:      c.misses,
		TokensSaved: c.tokensSaved,
		Entries:     c.lru.Len(),
		Bytes:       c.bytes,
		PinnedPages: c.pinnedPages,
		PinnedBytes: c.pinnedBytes,
		Leases:      c.leases,
	}
}

// CachedPrefixLen reports the depth (token count) of the deepest
// cached session prefix of ids, without mutating hit/miss stats, the
// LRU order or the trie itself — the read-only probe behind the
// adaptive speculation controller's prefix-reuse feature.
func (c *TrieCache) CachedPrefixLen(ids []int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, depth := c.lookupLocked(ids)
	return depth
}

// DepthHits returns the per-depth histogram of prefix reuse: bucket i
// counts hits (exact and partial) whose matched depth d had
// 2^i <= d < 2^(i+1), with depth 1 in bucket 0.
func (c *TrieCache) DepthHits() [TrieDepthBuckets]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.depthHits
}

// Len reports the current number of cached sessions.
func (c *TrieCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes reports the cache's estimated retained memory.
func (c *TrieCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Walk visits every session-bearing node as (prefix token ids, session)
// — diagnostics for tests (the concurrency soak re-derives each node's
// prefix and checks the stored session against a fresh build). The
// callback runs under the cache lock; it must not call back in.
func (c *TrieCache) Walk(fn func(prefix []int, g *Gen)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rec func(n *trieNode, prefix []int)
	rec = func(n *trieNode, prefix []int) {
		prefix = append(prefix, n.span...)
		if n.gen != nil {
			fn(append([]int(nil), prefix...), n.gen)
		}
		for _, child := range n.children {
			rec(child, prefix)
		}
	}
	rec(c.root, nil)
}
