package model

import (
	"strings"
)

// stopwords are prompt words carrying no task-discriminating content.
// Everything else in a prompt (module names, widths, operation words)
// becomes a conditioning keyword.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true,
	"of": true, "to": true, "in": true, "on": true, "for": true,
	"with": true, "that": true, "this": true, "is": true, "are": true,
	"as": true, "by": true, "it": true, "its": true, "be": true,
	"should": true, "uses": true, "use": true, "using": true,
	"module": true, "verilog": true, "code": true, "design": true,
	"implement": true, "implements": true, "implementation": true,
	"create": true, "creates": true, "write": true, "given": true,
	"input": true, "inputs": true, "output": true, "outputs": true,
	"signal": true, "signals": true, "please": true, "act": true,
	"professional": true, "designer": true, "named": true, "name": true,
	"called": true, "which": true, "each": true, "all": true,
	"when": true, "where": true, "must": true, "will": true,
	"can": true, "bit": true, "bits": true, "wide": true,
	"has": true, "have": true, "takes": true, "assigns": true,
	"simple": true, "following": true, "instruction": true,
	"response": true, "reg": true, "wire": true,
}

// maxKeywords caps conditioning keywords per prompt.
const maxKeywords = 12

// Keywords extracts the content words of a natural-language prompt —
// the conditioning signal of the keyword-mixture mechanism (the n-gram
// analogue of prompt attention). Words are lowercased alphanumeric
// runs; stopwords and single letters are dropped, digits are kept
// (widths such as "8" in "8-bit" discriminate tasks).
func Keywords(prompt string) []string {
	var out []string
	seen := map[string]bool{}
	lower := strings.ToLower(prompt)
	i := 0
	for i < len(lower) && len(out) < maxKeywords {
		c := lower[i]
		isAl := c >= 'a' && c <= 'z'
		isNum := c >= '0' && c <= '9'
		if !isAl && !isNum && c != '_' {
			i++
			continue
		}
		j := i
		for j < len(lower) {
			c := lower[j]
			if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' {
				j++
				continue
			}
			break
		}
		w := lower[i:j]
		i = j
		if stopwords[w] || seen[w] {
			continue
		}
		if len(w) < 2 && !(w[0] >= '0' && w[0] <= '9') {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

// kwSeed hashes a keyword into the seed space of the conditioned tables.
func kwSeed(w string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(w); i++ {
		h ^= uint64(w[i])
		h *= 1099511628211
	}
	// Avoid the zero seed reserved for the unconditioned tables.
	if h == 0 {
		h = 1
	}
	return h
}
