package model

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"repro/internal/tokenizer"
)

// genEquiv asserts two sessions are indistinguishable — every field a
// decode can observe, plus the resumable fork state (so deeper forks of
// the two would stay equivalent too).
func genEquiv(t *testing.T, got, want *Gen, id string) {
	t.Helper()
	if got.promptLen != want.promptLen {
		t.Fatalf("%s: promptLen %d, want %d", id, got.promptLen, want.promptLen)
	}
	if len(got.seeds) != len(want.seeds) {
		t.Fatalf("%s: %d seeds, want %d", id, len(got.seeds), len(want.seeds))
	}
	for i := range want.seeds {
		if got.seeds[i] != want.seeds[i] {
			t.Fatalf("%s: seed %d is %d, want %d", id, i, got.seeds[i], want.seeds[i])
		}
	}
	if len(got.promptToks) != len(want.promptToks) {
		t.Fatalf("%s: %d prompt toks, want %d", id, len(got.promptToks), len(want.promptToks))
	}
	for tok := range want.promptToks {
		if !got.promptToks[tok] {
			t.Fatalf("%s: prompt tok %d missing", id, tok)
		}
	}
	if len(got.codePos) != len(want.codePos) {
		t.Fatalf("%s: codePos len %d, want %d", id, len(got.codePos), len(want.codePos))
	}
	for i := range want.codePos {
		if got.codePos[i] != want.codePos[i] {
			t.Fatalf("%s: codePos[%d] = %v, want %v", id, i, got.codePos[i], want.codePos[i])
		}
	}
	if (got.fork == nil) != (want.fork == nil) {
		t.Fatalf("%s: forkability mismatch", id)
	}
	if want.fork != nil {
		if got.fork.cleanText != want.fork.cleanText {
			t.Fatalf("%s: cleanText diverged\n got %q\nwant %q", id, got.fork.cleanText, want.fork.cleanText)
		}
		if got.fork.lineStart != want.fork.lineStart || got.fork.pendingLine != want.fork.pendingLine {
			t.Fatalf("%s: line state (%d,%q), want (%d,%q)", id,
				got.fork.lineStart, got.fork.pendingLine, want.fork.lineStart, want.fork.pendingLine)
		}
	}
}

// genFingerprint checksums a session's observable state — the soak test
// uses it to prove sessions are never mutated after sharing.
func genFingerprint(g *Gen) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "len=%d;", g.promptLen)
	for _, s := range g.seeds {
		fmt.Fprintf(h, "s%d;", s)
	}
	toks := make([]int, 0, len(g.promptToks))
	for tok := range g.promptToks {
		toks = append(toks, tok)
	}
	sort.Ints(toks)
	for _, tok := range toks {
		fmt.Fprintf(h, "t%d;", tok)
	}
	for _, b := range g.codePos {
		fmt.Fprintf(h, "%v;", b)
	}
	if g.fork != nil {
		fmt.Fprintf(h, "txt=%q;ls=%d;pl=%q", g.fork.cleanText, g.fork.lineStart, g.fork.pendingLine)
	}
	return h.Sum64()
}

// forkFixture trains a model whose prompts include verbatim code lines
// (the hard case for resumable code-line marking).
func forkFixture(t *testing.T) (*Model, [][]int) {
	t.Helper()
	tk := tokenizer.Train(corpusText(), 400)
	m := Train(tk, smallCfg(), SchemeOurs, trainExamples)
	texts := []string{
		trainExamples[0].Prompt,
		trainExamples[1].Prompt,
		// A VGen-style prompt with a verbatim module header: the code
		// lines must be marked identically however the prompt is split.
		"Complete the module below.\nmodule addsub (\n    input [7:0] a,\n    input [7:0] b,\n    output [7:0] y\n);\n",
		// Edge content: unicode, digits-only keywords, trailing newline.
		"Design an 8-bit Gray-code counter — überschnell, with wrap at 255.\n",
	}
	var prompts [][]int
	for _, txt := range texts {
		prompts = append(prompts, CanonicalPromptIDs(tk, txt))
	}
	return m, prompts
}

// TestForkMatchesFreshAtEverySplit is the core copy-on-extend property:
// NewGen(prefix).Fork(suffix) must equal NewGen(full) at every split
// point of every fixture prompt.
func TestForkMatchesFreshAtEverySplit(t *testing.T) {
	m, prompts := forkFixture(t)
	for pi, ids := range prompts {
		want := m.NewGen(ids)
		for cut := 0; cut <= len(ids); cut++ {
			base := m.NewGen(ids[:cut])
			got := base.Fork(ids[cut:])
			genEquiv(t, got, want, fmt.Sprintf("prompt %d cut %d", pi, cut))
		}
	}
}

// TestForkChain splits a prompt into many pieces and forks through all
// of them; the terminal session must equal a fresh build, and every
// intermediate parent must be left untouched.
func TestForkChain(t *testing.T) {
	m, prompts := forkFixture(t)
	ids := prompts[2]
	want := m.NewGen(ids)
	for _, step := range []int{1, 2, 3, 7} {
		g := m.NewGen(nil)
		var parents []*Gen
		var prints []uint64
		for pos := 0; pos < len(ids); pos += step {
			end := pos + step
			if end > len(ids) {
				end = len(ids)
			}
			parents = append(parents, g)
			prints = append(prints, genFingerprint(g))
			g = g.Fork(ids[pos:end])
		}
		genEquiv(t, g, want, fmt.Sprintf("chain step %d", step))
		for i, p := range parents {
			if genFingerprint(p) != prints[i] {
				t.Fatalf("step %d: parent %d mutated by fork", step, i)
			}
		}
	}
}

// TestForkZeroExtensionShares pins the copy-on-extend contract for the
// degenerate extension: no copy, the shared immutable session itself.
func TestForkZeroExtensionShares(t *testing.T) {
	m, prompts := forkFixture(t)
	g := m.NewGen(prompts[0])
	if g.Fork(nil) != g {
		t.Fatal("zero-length fork did not share the session")
	}
}

// TestForkNonForkablePanics pins the contract for diagnostic sessions.
func TestForkNonForkablePanics(t *testing.T) {
	m, prompts := forkFixture(t)
	g := &Gen{m: m, promptLen: 3, clipOff: true}
	if g.Forkable() {
		t.Fatal("diagnostic session claims forkability")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Fork of a non-forkable session did not panic")
		}
	}()
	g.Fork(prompts[0][:2])
}

// TestForkMemBytesGrows sanity-checks the byte estimator the trie's
// eviction budget runs on.
func TestForkMemBytesGrows(t *testing.T) {
	m, prompts := forkFixture(t)
	small := m.NewGen(prompts[0][:4])
	big := small.Fork(prompts[0][4:])
	if small.MemBytes() <= 0 || big.MemBytes() <= small.MemBytes() {
		t.Fatalf("MemBytes small=%d big=%d, want 0 < small < big", small.MemBytes(), big.MemBytes())
	}
}
