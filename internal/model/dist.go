// Package model implements the repository's substitute for the paper's
// GPU language models (CodeLlama-7b, CodeT5p-220m): a deterministic
// statistical language model over BPE token ids — an interpolated
// backoff n-gram with an induction-style prompt-copy mechanism — plus
// Medusa-style decoding heads that predict tokens at offsets 2..n+1.
//
// Everything the paper's method touches exists here with the same
// semantics: per-head next-token distributions, entropies for the
// typical-acceptance test, and training labels that genuinely change
// head quality. The NTP / Medusa-2 / syntax-enriched ("Ours") training
// schemes therefore produce the paper's quality and speed orderings
// mechanistically rather than by construction.
package model

import (
	"math"
	"sort"
)

// Dist is a sparse probability distribution over token ids. Mass not
// present in P is treated as (approximately) zero; distributions are
// always normalized at construction.
type Dist struct {
	P map[int]float64
}

// Prob returns the probability of token id.
func (d Dist) Prob(id int) float64 { return d.P[id] }

// Entropy returns the Shannon entropy (nats) of the distribution — the
// H(p_base) term of the paper's typical-acceptance rule (eq. 1).
func (d Dist) Entropy() float64 {
	h := 0.0
	for _, p := range d.P {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Argmax returns the most probable token, breaking ties by the smaller
// id for determinism.
func (d Dist) Argmax() int {
	best, bestP := -1, -1.0
	for id, p := range d.P {
		if p > bestP || (p == bestP && id < best) {
			best, bestP = id, p
		}
	}
	return best
}

// TopK returns the k most probable token ids in descending probability
// (ties by ascending id).
func (d Dist) TopK(k int) []int {
	type tp struct {
		id int
		p  float64
	}
	all := make([]tp, 0, len(d.P))
	for id, p := range d.P {
		all = append(all, tp{id, p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// Sample draws a token at the given temperature using u ∈ [0,1).
// Temperature 0 (or below) is greedy. Iteration order is made
// deterministic by sorting ids.
func (d Dist) Sample(temp, u float64) int {
	if temp <= 0 {
		return d.Argmax()
	}
	ids := make([]int, 0, len(d.P))
	for id := range d.P {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// Temperature reshaping: p^(1/T), renormalized.
	inv := 1.0 / temp
	total := 0.0
	w := make([]float64, len(ids))
	for i, id := range ids {
		w[i] = math.Pow(d.P[id], inv)
		total += w[i]
	}
	if total <= 0 {
		return d.Argmax()
	}
	target := u * total
	acc := 0.0
	for i, id := range ids {
		acc += w[i]
		if target < acc {
			return id
		}
	}
	return ids[len(ids)-1]
}

// normalize scales the map to sum to one (no-op for empty maps).
func normalize(p map[int]float64) {
	total := 0.0
	for _, v := range p {
		total += v
	}
	if total <= 0 {
		return
	}
	for k, v := range p {
		p[k] = v / total
	}
}

// mix returns (1-g)*a + g*b over the union support, normalized.
func mix(a, b map[int]float64, g float64) map[int]float64 {
	out := make(map[int]float64, len(a)+len(b))
	for k, v := range a {
		out[k] += (1 - g) * v
	}
	for k, v := range b {
		out[k] += g * v
	}
	normalize(out)
	return out
}
