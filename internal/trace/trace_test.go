package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.StartTrace("x") != nil {
		t.Fatal("nil tracer must start nil traces")
	}
	tr.AddPhase(KindDraft, time.Second)
	if got := tr.PhaseSeconds(); got != nil {
		t.Fatalf("nil tracer phase sums = %v", got)
	}
	var tc *Trace
	sp := tc.Start(nil, KindDecode, "")
	if sp != nil {
		t.Fatal("nil trace must start nil spans")
	}
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	tc.Finish("ok")
	if tc.ID() != "" || tc.Dropped() != 0 {
		t.Fatal("nil trace accessors must zero-value")
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil || SpanFromContext(ctx) != nil {
		t.Fatal("nil plumbing must round-trip nil")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tcr := New(Config{})
	tr := tcr.StartTrace("req-1")
	root := tr.Start(nil, KindRequest, "POST /v1/generate")
	att := tr.Start(root, KindAttempt, "r0")
	att.SetAttr("role", "primary")
	att.SetAttrInt("try", 1)
	dec := tr.Start(att, KindDecode, "")
	dec.SetAttrInt("steps", 7)
	dec.End()
	att.End()
	root.End()
	tr.Finish("ok")

	snap, ok := tcr.Lookup("req-1")
	if !ok {
		t.Fatal("finished trace not in flight recorder")
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(snap.Spans))
	}
	if snap.Spans[0].Parent != -1 || snap.Spans[1].Parent != 0 || snap.Spans[2].Parent != 1 {
		t.Fatalf("bad parentage: %+v", snap.Spans)
	}
	tree := snap.Tree()
	for _, want := range []string{"trace req-1 ok", KindRequest, "role=primary", "steps=7"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	// Attr overwrite keeps one entry.
	tr2 := tcr.StartTrace("")
	s := tr2.Start(nil, KindRequest, "")
	s.SetAttr("k", "a")
	s.SetAttr("k", "b")
	s.End()
	tr2.Finish("ok")
	got := tr2.SnapshotNow().Spans[0].Attrs
	if len(got) != 1 || got[0].Value != "b" {
		t.Fatalf("attr overwrite: %+v", got)
	}
}

func TestLateSpanEndVisibleAfterFinish(t *testing.T) {
	tcr := New(Config{})
	tr := tcr.StartTrace("late")
	root := tr.Start(nil, KindRequest, "")
	loser := tr.Start(root, KindAttempt, "r1")
	root.End()
	tr.Finish("ok")
	// Hedged loser ends after the trace finished: must still show up
	// closed in the recorded snapshot.
	loser.SetAttr("outcome", "canceled")
	loser.End()
	snap, _ := tcr.Lookup("late")
	var found bool
	for _, s := range snap.Spans {
		if s.Kind == KindAttempt {
			found = true
			if s.EndMS < 0 {
				t.Fatal("late-ended span still open in snapshot")
			}
			if len(s.Attrs) != 1 || s.Attrs[0].Value != "canceled" {
				t.Fatalf("late attr lost: %+v", s.Attrs)
			}
		}
	}
	if !found {
		t.Fatal("attempt span missing")
	}
}

func TestSlotOverflowDrops(t *testing.T) {
	tcr := New(Config{MaxSpans: 4})
	tr := tcr.StartTrace("ovf")
	for i := 0; i < 10; i++ {
		sp := tr.Start(nil, KindSweep, "")
		sp.End() // nil-safe past the cap
	}
	tr.Finish("ok")
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	snap := tr.SnapshotNow()
	if snap.Dropped != 6 || len(snap.Spans) != 4 {
		t.Fatalf("snapshot dropped=%d spans=%d", snap.Dropped, len(snap.Spans))
	}
}

func TestConcurrentSpanClaims(t *testing.T) {
	tcr := New(Config{MaxSpans: 1024})
	tr := tcr.StartTrace("conc")
	root := tr.Start(nil, KindRequest, "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start(root, KindAttempt, fmt.Sprintf("g%d", g))
				sp.SetAttrInt("i", int64(i))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	tr.Finish("ok")
	snap := tr.SnapshotNow()
	if len(snap.Spans) != 801 {
		t.Fatalf("want 801 spans, got %d", len(snap.Spans))
	}
	for _, s := range snap.Spans[1:] {
		if s.Parent != 0 {
			t.Fatalf("span %d parent %d", s.Index, s.Parent)
		}
	}
}

func TestPhaseSums(t *testing.T) {
	tcr := New(Config{})
	tcr.AddPhase(KindDraft, 200*time.Millisecond)
	tcr.AddPhase(KindDraft, 300*time.Millisecond)
	tcr.AddPhase(KindVerify, time.Second)
	got := tcr.PhaseSeconds()
	if got[KindDraft] < 0.499 || got[KindDraft] > 0.501 {
		t.Fatalf("draft sum %v", got[KindDraft])
	}
	if got[KindVerify] != 1.0 {
		t.Fatalf("verify sum %v", got[KindVerify])
	}
	// Ending a span folds its kind too.
	tr := tcr.StartTrace("")
	sp := tr.Start(nil, KindQueue, "")
	sp.End()
	if _, ok := tcr.PhaseSeconds()[KindQueue]; !ok {
		t.Fatal("span End did not fold into phase sums")
	}
}

func TestRecorderRingAndSlowestReservoir(t *testing.T) {
	tcr := New(Config{RingSize: 4, SlowestK: 2})
	finish := func(id string, d time.Duration) {
		tr := tcr.StartTrace(id)
		tr.mu.Lock()
		tr.start = tr.start.Add(-d) // synthesize duration without sleeping
		tr.mu.Unlock()
		tr.Finish("ok")
	}
	finish("slow-a", 500*time.Millisecond)
	finish("slow-b", 900*time.Millisecond)
	for i := 0; i < 6; i++ {
		finish(fmt.Sprintf("fast-%d", i), time.Duration(i)*time.Millisecond)
	}
	// Ring (size 4) holds fast-2..fast-5; the slow pair must survive
	// in the reservoir.
	if _, ok := tcr.Lookup("fast-0"); ok {
		t.Fatal("fast-0 should have been evicted")
	}
	for _, id := range []string{"slow-a", "slow-b", "fast-5"} {
		if _, ok := tcr.Lookup(id); !ok {
			t.Fatalf("%s missing from recorder", id)
		}
	}
	all := tcr.Completed()
	if len(all) != 6 {
		t.Fatalf("completed = %d traces, want 6 (4 ring + 2 reservoir)", len(all))
	}
	if all[0].ID != "fast-5" {
		t.Fatalf("newest first, got %s", all[0].ID)
	}
	if all[4].ID != "slow-b" || all[5].ID != "slow-a" {
		t.Fatalf("reservoir order: %s, %s", all[4].ID, all[5].ID)
	}
}

func TestContextPlumbing(t *testing.T) {
	tcr := New(Config{})
	tr := tcr.StartTrace("ctx")
	root := tr.Start(nil, KindRequest, "")
	ctx := ContextWithSpan(NewContext(context.Background(), tr), root)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	if SpanFromContext(ctx) != root {
		t.Fatal("span lost in context")
	}
	if NewID() == NewID() {
		t.Fatal("IDs must be unique")
	}
}
