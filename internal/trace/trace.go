// Package trace is a zero-dependency request-tracing layer for the
// serving stack: a Tracer owns per-span-kind duration sums and a
// flight recorder; each request assembles one Trace out of Spans
// claimed lock-cheaply from a fixed slot array via an atomic cursor.
//
// Every method on *Tracer, *Trace and *Span is nil-safe: with tracing
// disabled the request path carries nil pointers and every call is a
// single branch, which is what keeps the tracing-off and tracing-on
// decode paths byte-identical and the overhead within the trace-gate
// bound.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds double as the phase labels of the
// vgend_phase_seconds_total{phase} metric family.
const (
	KindRequest      = "request"       // root: one per served request
	KindRouter       = "router"        // cluster routing decision
	KindAttempt      = "attempt"       // one dispatch attempt (primary/hedge/failover/steal)
	KindAdmission    = "admission"     // shed-policy chain evaluation
	KindSingleFlight = "single_flight" // follower waiting on a dedup leader
	KindQueue        = "queue"         // enqueue -> scheduler pickup
	KindDecode       = "decode"        // BeginDecode -> Finish
	KindSessionPrep  = "session_prep"  // prompt prefill / trie attach
	KindSweep        = "sweep"         // one draft+verify verification sweep
	KindPark         = "park"          // preemption park -> resume
	KindDraft        = "draft"         // phase-only: drafting time inside sweeps
	KindVerify       = "verify"        // phase-only: verification forward time
)

// Attr is one key/value annotation on a span. Values are stored as
// strings; use Span.SetAttr/SetAttrInt.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a request. Spans are created via
// Trace.Start and closed with End; attributes may be set until the
// owning Trace is snapshotted. The zero slot index is reserved for
// the root, and Parent == -1 marks a root span.
type Span struct {
	tr     *Trace
	index  int32
	parent int32
	kind   string
	name   string
	start  time.Time
	end    time.Time
	attrs  []Attr
}

// Config sizes a Tracer.
type Config struct {
	// MaxSpans bounds the per-trace slot array; spans started past the
	// bound are counted as dropped, not recorded. Default 256.
	MaxSpans int
	// RingSize bounds the completed-trace ring. Default 256.
	RingSize int
	// SlowestK sizes the always-retained slowest-trace reservoir.
	// Default 16.
	SlowestK int
}

// Tracer owns the flight recorder and the per-span-kind duration
// accumulator shared by every trace it starts.
type Tracer struct {
	cfg Config
	rec *recorder

	phaseMu sync.Mutex
	phase   map[string]time.Duration
	started atomic.Uint64
}

// New builds a Tracer; zero config fields take defaults.
func New(cfg Config) *Tracer {
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 256
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.SlowestK <= 0 {
		cfg.SlowestK = 16
	}
	return &Tracer{
		cfg:   cfg,
		rec:   newRecorder(cfg.RingSize, cfg.SlowestK),
		phase: make(map[string]time.Duration),
	}
}

// NewID returns a fresh 16-hex-char request/trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall
		// back to a counter-free constant-prefix ID rather than panic.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// StartTrace begins a trace for one request. id may come from the
// client (X-Request-ID); empty picks a fresh one. Returns nil on a
// nil Tracer so disabled tracing threads nil all the way down.
func (t *Tracer) StartTrace(id string) *Trace {
	if t == nil {
		return nil
	}
	if id == "" {
		id = NewID()
	}
	t.started.Add(1)
	return &Trace{
		tracer: t,
		id:     id,
		start:  time.Now(),
		spans:  make([]*Span, t.cfg.MaxSpans),
	}
}

// AddPhase folds a duration into the per-kind accumulator directly —
// used for phase-only kinds (draft/verify) measured inside a sweep
// without allocating a span per measurement.
func (t *Tracer) AddPhase(kind string, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.phaseMu.Lock()
	t.phase[kind] += d
	t.phaseMu.Unlock()
}

// PhaseSeconds snapshots the per-span-kind duration sums, in seconds.
func (t *Tracer) PhaseSeconds() map[string]float64 {
	if t == nil {
		return nil
	}
	t.phaseMu.Lock()
	defer t.phaseMu.Unlock()
	out := make(map[string]float64, len(t.phase))
	for k, v := range t.phase {
		out[k] = v.Seconds()
	}
	return out
}

// TracesStarted reports how many traces this Tracer has begun.
func (t *Tracer) TracesStarted() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Completed lists recorded traces, most recent first, slowest-K
// reservoir included (deduplicated by identity).
func (t *Tracer) Completed() []Snapshot {
	if t == nil {
		return nil
	}
	return t.rec.completed()
}

// Lookup finds a recorded trace by ID.
func (t *Tracer) Lookup(id string) (Snapshot, bool) {
	if t == nil {
		return Snapshot{}, false
	}
	return t.rec.lookup(id)
}

// Trace is one request's span tree. The slot array is fixed at
// creation; spans claim slots with an atomic cursor so concurrent
// attempt goroutines never contend on a lock to start a span. A
// single mutex guards span field writes and snapshots — span bodies
// are touched far less often than slots are claimed.
type Trace struct {
	tracer *Tracer
	id     string
	start  time.Time

	next    atomic.Int32
	dropped atomic.Int64

	mu       sync.Mutex
	spans    []*Span
	end      time.Time
	status   string
	finished bool
}

// ID returns the trace's request ID ("" on nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Start opens a span under parent (nil parent = child of the root, or
// the root itself if none exists yet). Returns nil — a no-op span —
// on a nil trace or when the slot array is exhausted.
func (tr *Trace) Start(parent *Span, kind, name string) *Span {
	if tr == nil {
		return nil
	}
	slot := tr.next.Add(1) - 1
	if int(slot) >= len(tr.spans) {
		tr.dropped.Add(1)
		return nil
	}
	pidx := int32(-1)
	if parent != nil && parent.tr == tr {
		pidx = parent.index
	} else if slot > 0 {
		pidx = 0 // orphan spans hang off the root rather than floating
	}
	s := &Span{
		tr:     tr,
		index:  slot,
		parent: pidx,
		kind:   kind,
		name:   name,
		start:  time.Now(),
	}
	tr.mu.Lock()
	tr.spans[slot] = s
	tr.mu.Unlock()
	return s
}

// Finish closes the trace with a status and hands it to the flight
// recorder. Idempotent; spans may still End (hedged losers) after
// Finish — they land in the recorded snapshot because the recorder
// stores the live *Trace and snapshots at read time.
func (tr *Trace) Finish(status string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.end = time.Now()
	tr.status = status
	dur := tr.end.Sub(tr.start)
	tr.mu.Unlock()
	tr.tracer.rec.record(tr, dur)
}

// AddPhase folds a duration into the owning tracer's per-kind sums —
// the Trace-side handle for phase-only measurements (draft/verify)
// accumulated away from any span.
func (tr *Trace) AddPhase(kind string, d time.Duration) {
	if tr == nil {
		return
	}
	tr.tracer.AddPhase(kind, d)
}

// Dropped reports how many span starts overflowed the slot array.
func (tr *Trace) Dropped() int64 {
	if tr == nil {
		return 0
	}
	return tr.dropped.Load()
}

// End closes the span and folds its duration into the tracer's
// per-kind phase sums. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.end.IsZero() {
		s.tr.mu.Unlock()
		return
	}
	s.end = time.Now()
	d := s.end.Sub(s.start)
	s.tr.mu.Unlock()
	s.tr.tracer.AddPhase(s.kind, d)
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.tr.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// Kind returns the span's kind ("" on nil).
func (s *Span) Kind() string {
	if s == nil {
		return ""
	}
	return s.kind
}

// Snapshot is an immutable view of a trace for JSON/debug rendering.
type Snapshot struct {
	ID         string         `json:"id"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Status     string         `json:"status"`
	Dropped    int64          `json:"dropped_spans,omitempty"`
	Spans      []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one span in a Snapshot. Times are milliseconds
// relative to the trace start; EndMS < 0 marks a still-open span.
type SpanSnapshot struct {
	Index   int     `json:"index"`
	Parent  int     `json:"parent"`
	Kind    string  `json:"kind"`
	Name    string  `json:"name,omitempty"`
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
	DurMS   float64 `json:"dur_ms"`
	Attrs   []Attr  `json:"attrs,omitempty"`
}

// SnapshotNow captures the trace's current state.
func (tr *Trace) SnapshotNow() Snapshot {
	if tr == nil {
		return Snapshot{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	snap := Snapshot{
		ID:      tr.id,
		Start:   tr.start,
		Status:  tr.status,
		Dropped: tr.dropped.Load(),
	}
	if !tr.end.IsZero() {
		snap.DurationMS = float64(tr.end.Sub(tr.start)) / float64(time.Millisecond)
	}
	n := int(tr.next.Load())
	if n > len(tr.spans) {
		n = len(tr.spans)
	}
	for i := 0; i < n; i++ {
		s := tr.spans[i]
		if s == nil {
			continue // slot claimed but body not yet published
		}
		ss := SpanSnapshot{
			Index:   int(s.index),
			Parent:  int(s.parent),
			Kind:    s.kind,
			Name:    s.name,
			StartMS: float64(s.start.Sub(tr.start)) / float64(time.Millisecond),
			EndMS:   -1,
		}
		if !s.end.IsZero() {
			ss.EndMS = float64(s.end.Sub(tr.start)) / float64(time.Millisecond)
			ss.DurMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
		}
		ss.Attrs = append([]Attr(nil), s.attrs...)
		snap.Spans = append(snap.Spans, ss)
	}
	return snap
}

// Tree renders the span tree as indented text, one span per line:
//
//	request 12.4ms ok
//	  attempt [replica=r0 role=primary outcome=wedged] 9.1ms
//	  attempt [replica=r1 role=hedge outcome=ok won=true] 3.2ms
//	    queue 0.3ms
//	    decode [steps=7] 2.8ms
func (snap Snapshot) Tree() string {
	children := map[int][]int{}
	for i, s := range snap.Spans {
		children[s.Parent] = append(children[s.Parent], i)
	}
	for _, c := range children {
		sort.Slice(c, func(a, b int) bool {
			return snap.Spans[c[a]].StartMS < snap.Spans[c[b]].StartMS
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s %.1fms\n", snap.ID, snap.Status, snap.DurationMS)
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		s := snap.Spans[idx]
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString(s.Kind)
		if s.Name != "" {
			fmt.Fprintf(&b, " %q", s.Name)
		}
		if len(s.Attrs) > 0 {
			b.WriteString(" [")
			for i, a := range s.Attrs {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%s", a.Key, a.Value)
			}
			b.WriteByte(']')
		}
		if s.EndMS >= 0 {
			fmt.Fprintf(&b, " %.2fms", s.DurMS)
		} else {
			b.WriteString(" (open)")
		}
		b.WriteByte('\n')
		for _, c := range children[idx] {
			walk(c, depth+1)
		}
	}
	for i, s := range snap.Spans {
		if s.Parent == -1 {
			walk(i, 0)
		}
	}
	return b.String()
}

type traceKey struct{}
type spanKey struct{}

// NewContext attaches a trace to a context.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext extracts the trace, nil if none.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// ContextWithSpan records the current parent span alongside the trace.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext extracts the current parent span, nil if none.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
