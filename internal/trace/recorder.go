package trace

import (
	"sort"
	"sync"
	"time"
)

// recorder is the flight recorder: a bounded ring of the last N
// completed traces plus an always-retained reservoir of the K slowest
// traces seen since startup, so the interesting outliers survive long
// after the ring has cycled past them. It stores live *Trace pointers
// and snapshots at read time, which lets hedged-loser spans that End
// after Trace.Finish still appear in the recorded tree.
type recorder struct {
	mu   sync.Mutex
	ring []*Trace // ring[next-1] is the newest entry
	next int
	full bool

	slowest []slowEntry // unordered; the minimum is replaced on insert
	k       int
}

type slowEntry struct {
	tr  *Trace
	dur time.Duration // fixed at Finish time
}

func newRecorder(ringSize, slowestK int) *recorder {
	return &recorder{ring: make([]*Trace, ringSize), k: slowestK}
}

func (r *recorder) record(tr *Trace, dur time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = tr
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	if len(r.slowest) < r.k {
		r.slowest = append(r.slowest, slowEntry{tr: tr, dur: dur})
		return
	}
	min := 0
	for i := 1; i < len(r.slowest); i++ {
		if r.slowest[i].dur < r.slowest[min].dur {
			min = i
		}
	}
	if dur > r.slowest[min].dur {
		r.slowest[min] = slowEntry{tr: tr, dur: dur}
	}
}

// completed snapshots every retained trace, ring entries newest first,
// then any slowest-reservoir traces the ring has already evicted
// (slowest of those first).
func (r *recorder) completed() []Snapshot {
	r.mu.Lock()
	var traces []*Trace
	seen := make(map[*Trace]bool)
	n := len(r.ring)
	if !r.full {
		n = r.next
	}
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		tr := r.ring[idx]
		if tr != nil && !seen[tr] {
			seen[tr] = true
			traces = append(traces, tr)
		}
	}
	slow := append([]slowEntry(nil), r.slowest...)
	r.mu.Unlock()

	sort.Slice(slow, func(a, b int) bool { return slow[a].dur > slow[b].dur })
	for _, e := range slow {
		if !seen[e.tr] {
			seen[e.tr] = true
			traces = append(traces, e.tr)
		}
	}
	out := make([]Snapshot, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.SnapshotNow())
	}
	return out
}

// lookup finds a retained trace by ID, scanning ring then reservoir.
func (r *recorder) lookup(id string) (Snapshot, bool) {
	r.mu.Lock()
	var hit *Trace
	for _, tr := range r.ring {
		if tr != nil && tr.id == id {
			hit = tr
			break
		}
	}
	if hit == nil {
		for _, e := range r.slowest {
			if e.tr.id == id {
				hit = e.tr
				break
			}
		}
	}
	r.mu.Unlock()
	if hit == nil {
		return Snapshot{}, false
	}
	return hit.SnapshotNow(), true
}
