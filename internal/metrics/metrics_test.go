package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPassAtKExactValues(t *testing.T) {
	// c = n: always passes.
	if !almost(PassAtK(20, 20, 1), 1) {
		t.Fatal("all-correct should be 1")
	}
	// c = 0: never passes.
	if !almost(PassAtK(20, 0, 10), 0) {
		t.Fatal("none-correct should be 0")
	}
	// n=2, c=1, k=1 -> 0.5
	if !almost(PassAtK(2, 1, 1), 0.5) {
		t.Fatalf("PassAtK(2,1,1) = %f", PassAtK(2, 1, 1))
	}
	// n=20, c=1, k=20 -> 1 (k covers everything)
	if !almost(PassAtK(20, 1, 20), 1) {
		t.Fatal("k=n with one correct must be 1")
	}
	// Hand-computed: n=4, c=2, k=2 -> 1 - C(2,2)/C(4,2) = 1 - 1/6
	if !almost(PassAtK(4, 2, 2), 1-1.0/6) {
		t.Fatalf("PassAtK(4,2,2) = %f", PassAtK(4, 2, 2))
	}
}

func TestPassAtKMonotonicityProperties(t *testing.T) {
	f := func(n8, c8, k8 uint8) bool {
		n := int(n8%30) + 1
		c := int(c8) % (n + 1)
		k := int(k8%uint8(n)) + 1
		p := PassAtK(n, c, k)
		if p < 0 || p > 1 {
			return false
		}
		// More correct samples never lowers pass@k.
		if c < n && PassAtK(n, c+1, k) < p {
			return false
		}
		// Larger k never lowers pass@k.
		if k < n && PassAtK(n, c, k+1) < p {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanPassAtK(t *testing.T) {
	results := []PromptResult{{N: 20, C: 20}, {N: 20, C: 0}}
	if !almost(MeanPassAtK(results, 5), 0.5) {
		t.Fatalf("mean = %f", MeanPassAtK(results, 5))
	}
	if MeanPassAtK(nil, 5) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestPassRate(t *testing.T) {
	results := []PromptResult{{20, 3}, {20, 0}, {20, 20}, {20, 0}}
	if !almost(PassRate(results), 0.5) {
		t.Fatalf("pass rate = %f", PassRate(results))
	}
}

func TestSpeedAndSpeedup(t *testing.T) {
	// Two outputs: 100 tokens in 1s and 300 tokens in 2s -> mean of
	// 100 and 150 = 125 tokens/s.
	s := Speed([]int{100, 300}, []float64{1, 2})
	if !almost(s, 125) {
		t.Fatalf("speed = %f", s)
	}
	if !almost(Speedup(250, 125), 2) {
		t.Fatalf("speedup = %f", Speedup(250, 125))
	}
	if Speedup(1, 0) != 0 {
		t.Fatal("zero baseline should give 0")
	}
	if Speed(nil, nil) != 0 || Speed([]int{1}, []float64{0}) != 0 {
		t.Fatal("degenerate speeds should be 0")
	}
}
