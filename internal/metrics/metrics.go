// Package metrics implements the paper's evaluation metrics: the
// unbiased pass@k estimator (eq. 5, from VerilogEval), Pass Rate
// (eq. 6), generation speed (eq. 3) and speedup (eq. 4).
package metrics

// PassAtK returns the probability that at least one of k samples drawn
// without replacement from n generations (of which c are correct)
// passes: 1 - C(n-c, k)/C(n, k). Results are exact and numerically
// stable (computed as a running product).
func PassAtK(n, c, k int) float64 {
	if k > n {
		k = n
	}
	if c <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	if n-c < k {
		return 1
	}
	// prod_{i=0}^{k-1} (n-c-i)/(n-i)
	fail := 1.0
	for i := 0; i < k; i++ {
		fail *= float64(n-c-i) / float64(n-i)
	}
	return 1 - fail
}

// PromptResult is the per-prompt sample outcome used by the aggregate
// metrics: n generated samples, c of them passing.
type PromptResult struct {
	N, C int
}

// MeanPassAtK averages pass@k over prompts (the expectation in eq. 5).
func MeanPassAtK(results []PromptResult, k int) float64 {
	if len(results) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range results {
		total += PassAtK(r.N, r.C, k)
	}
	return total / float64(len(results))
}

// PassRate is eq. 6: the fraction of prompts with at least one passing
// sample.
func PassRate(results []PromptResult) float64 {
	if len(results) == 0 {
		return 0
	}
	m := 0
	for _, r := range results {
		if r.C > 0 {
			m++
		}
	}
	return float64(m) / float64(len(results))
}

// Speed is eq. 3: the mean of per-output tokens/second ratios.
// tokens[i] is the output token length and seconds[i] the inference
// time of output i.
func Speed(tokens []int, seconds []float64) float64 {
	if len(tokens) == 0 || len(tokens) != len(seconds) {
		return 0
	}
	total := 0.0
	n := 0
	for i := range tokens {
		if seconds[i] <= 0 {
			continue
		}
		total += float64(tokens[i]) / seconds[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Speedup is eq. 4: the ratio of a method's speed to the NTP baseline.
func Speedup(speed, ntpSpeed float64) float64 {
	if ntpSpeed <= 0 {
		return 0
	}
	return speed / ntpSpeed
}
